//! Full protocol exchange over the shared medium — the closest test to the
//! real app: both directions travel the same water, Bob runs the
//! continuously-listening streaming receiver, and his feedback waveform is
//! actually *played* into the medium for Alice to decode.

use aqua_channel::device::Device;
use aqua_channel::environments::{Environment, Site};
use aqua_channel::geometry::Pos;
use aqua_channel::medium::Medium;
use aqua_channel::mobility::Trajectory;
use aqua_phy::feedback::{decode_feedback_whitened, noise_bin_power};
use aqua_phy::frame::{build_header, FrameConfig};
use aqua_phy::ofdm::modulate_data;
use aqua_phy::preamble::Preamble;
use aquapp::receiver::{RxEvent, StreamingReceiver};

const FS: f64 = 48_000.0;
const BLOCK: usize = 960; // 20 ms audio callback

#[test]
fn two_way_exchange_over_shared_water() {
    let frame = FrameConfig::default();
    let params = frame.params;
    let preamble = Preamble::new(params);
    let payload: Vec<u8> = (0..16).map(|i| ((i * 5 + 1) % 2) as u8).collect();

    let mut medium = Medium::new(Environment::preset(Site::Bridge), FS, 21);
    let alice = medium.add_node(
        Device::default_rig(1),
        Trajectory::fixed(Pos::new(0.0, 0.0, 1.0)),
    );
    let bob = medium.add_node(
        Device::default_rig(2),
        Trajectory::fixed(Pos::new(6.0, 0.0, 1.0)),
    );

    // --- Alice transmits the header on her sample clock (t = 0.1 s) ---
    let t0: u64 = 4_800;
    let header = build_header(&frame, &preamble, 9);
    medium.transmit(alice, t0, &header);

    // --- Bob's streaming receiver chews the audio in 20 ms blocks ---
    let mut rx = StreamingReceiver::new(frame, 9);
    let mut bob_clock: u64 = 0;
    let mut band = None;
    // run Bob until he has produced the feedback waveform
    while band.is_none() && bob_clock < t0 + 3 * header.len() as u64 {
        let block = medium.capture(bob, bob_clock, BLOCK);
        for event in rx.push(&block) {
            if let RxEvent::FeedbackReady { band: b, waveform } = event {
                // Bob plays the feedback immediately
                medium.transmit(bob, bob_clock + BLOCK as u64, &waveform);
                band = Some(b);
            }
        }
        bob_clock += BLOCK as u64;
    }
    let bob_band = band.expect("Bob must reach the feedback stage");

    // --- Alice decodes the feedback from the same shared water ---
    // her noise calibration (recorded earlier, node-local ambient)
    let ambient = medium.capture(alice, 1_000_000, 8 * params.n_fft);
    let npp = noise_bin_power(&params, &ambient);
    // she listens from the end of her header transmission onwards
    let listen_from = t0 + header.len() as u64;
    let fb_window = medium.capture(alice, listen_from, 48_000);
    let decoded = decode_feedback_whitened(&params, &fb_window, 0.3, Some(&npp))
        .expect("Alice must decode Bob's feedback");
    assert_eq!(decoded.band, bob_band, "band survives the backward channel");

    // --- Alice sends the data section at her fixed symbol-clock offset ---
    let data = modulate_data(&params, decoded.band, &payload);
    let data_at = t0 + frame.data_start_offset() as u64;
    medium.transmit(alice, data_at, &data);

    // --- Bob keeps listening and decodes the packet ---
    let mut got = None;
    let deadline = data_at + (data.len() + 60_000) as u64;
    while got.is_none() && bob_clock < deadline {
        let block = medium.capture(bob, bob_clock, BLOCK);
        for event in rx.push(&block) {
            match event {
                RxEvent::Packet { bits, .. } => got = Some(bits),
                RxEvent::DataLost => panic!("data section lost"),
                _ => {}
            }
        }
        bob_clock += BLOCK as u64;
    }
    assert_eq!(got, Some(payload), "payload through two-way shared water");
}
