//! Acceptance for bulk transfer under time-varying faults (DESIGN.md
//! §13): a 2 KB payload crosses the 15 m Lake link bit-exact through a
//! schedule with a mid-transfer 30 s blackout plus impulsive-burst
//! trains — by suspending, probing, and resuming — where the static
//! engine under the *same* schedule and round budget provably fails.
//! Also pins the hard invariant the fault seam rides on: attaching an
//! empty schedule changes nothing, down to the last airtime bit.

use aqua_channel::environments::{Environment, Site};
use aqua_channel::fault::FaultSchedule;
use aqua_channel::geometry::Pos;
use aqua_proto::transfer::TransferParams;
use aquapp::bulk::{run_adaptive_transfer, run_bulk_transfer, BulkConfig, BulkReason};
use aquapp::trial::TrialConfig;

/// Deterministic pseudo-random payload (splitmix-style byte stream).
fn payload_bytes(len: usize, mut state: u64) -> Vec<u8> {
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

fn lake_cfg(range_m: f64, seed: u64) -> BulkConfig {
    BulkConfig {
        base: TrialConfig::standard(
            Environment::preset(Site::Lake),
            Pos::new(0.0, 0.0, 1.0),
            Pos::new(range_m, 0.0, 1.0),
            seed,
        ),
        params: TransferParams::default_rs(),
        window: 12,
        max_rounds: 13,
        faults: None,
    }
}

/// The storm: snapping-shrimp burst trains over the whole session plus a
/// 30 s hard blackout landing mid-transfer (a clean 2 KB run takes
/// ~68 s of airtime over this link, so t = 25 s is a couple of full
/// windows in).
fn storm() -> FaultSchedule {
    FaultSchedule::seeded(0xFA17)
        .with_burst_train(0.0, 180.0, 0.1, 0.7)
        .with_blackout(25.0, 30.0)
}

#[test]
fn adaptive_rides_out_a_30s_blackout_where_the_static_engine_fails() {
    let payload = payload_bytes(2048, 0xA11CE);
    let mut cfg = lake_cfg(15.0, 77);
    cfg.faults = Some(storm());

    // Static engine, same schedule, same round budget: every round that
    // overlaps the blackout is a total loss it pays for in full, and the
    // budget is gone before the payload is.
    let stat = run_bulk_transfer(&cfg, &payload).expect("valid config");
    assert_eq!(stat.delivered, None, "static engine must not survive");
    assert_eq!(stat.reason, BulkReason::RoundBudget);
    assert_eq!(stat.rounds, cfg.max_rounds);

    // Adaptive engine: two dead rounds trigger suspension; backed-off
    // probes cross the blackout without touching the round budget; the
    // transfer resumes where it parked and completes bit-exact.
    let out = run_adaptive_transfer(&cfg, &payload).expect("valid config");
    assert_eq!(
        out.delivered.as_deref(),
        Some(&payload[..]),
        "2 KB must arrive bit-exact through the storm (reason {:?}, rounds {}, probes {})",
        out.reason,
        out.rounds,
        out.probes
    );
    assert_eq!(out.reason, BulkReason::Completed);
    assert!(out.suspensions >= 1, "the blackout must trigger suspension");
    assert!(out.probes >= 1, "resume must come through a probe");
    assert!(
        out.suspended_s > 5.0,
        "the wait crosses a real outage, got {:.1} s",
        out.suspended_s
    );
    assert!(out.rounds <= cfg.max_rounds);
}

#[test]
fn permanent_blackout_ends_in_blackout_not_round_budget() {
    // The link dies 3 s in and never comes back: the adaptive sender
    // must suspend, exhaust its probe budget, and say *why* it failed.
    let payload = payload_bytes(512, 0xBEEF);
    let mut cfg = lake_cfg(15.0, 78);
    cfg.faults = Some(FaultSchedule::seeded(1).with_blackout(3.0, 1e7));

    let out = run_adaptive_transfer(&cfg, &payload).expect("valid config");
    assert_eq!(out.delivered, None);
    assert_eq!(out.reason, BulkReason::Blackout, "explicit failure mode");
    assert!(out.suspensions >= 1);
    assert_eq!(out.probes, aquapp::bulk::PROBE_BUDGET, "probe budget spent");
}

#[test]
fn empty_fault_schedule_is_bit_identical_to_none() {
    // The zero-fault path through the fault seam must be the exact
    // pipeline that shipped before it existed: same bytes, same rounds,
    // same packet counts, airtime equal to the last bit.
    let payload = payload_bytes(480, 0x5EED);
    let plain = lake_cfg(15.0, 901);
    let mut seamed = plain.clone();
    seamed.faults = Some(FaultSchedule::seeded(0xDEAD));
    assert!(seamed.faults.as_ref().unwrap().is_empty());

    for (a, b) in [
        (
            run_bulk_transfer(&plain, &payload).expect("valid config"),
            run_bulk_transfer(&seamed, &payload).expect("valid config"),
        ),
        (
            run_adaptive_transfer(&plain, &payload).expect("valid config"),
            run_adaptive_transfer(&seamed, &payload).expect("valid config"),
        ),
    ] {
        assert_eq!(a.delivered.as_deref(), Some(&payload[..]));
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.reason, b.reason);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.packets_sent, b.packets_sent);
        assert_eq!(a.packets_delivered, b.packets_delivered);
        assert_eq!(a.erasures, b.erasures);
        assert_eq!(a.duplicates, b.duplicates);
        assert_eq!(a.acks_lost, b.acks_lost);
        assert_eq!(
            a.airtime_s.to_bits(),
            b.airtime_s.to_bits(),
            "airtime must match to the bit"
        );
    }
}
