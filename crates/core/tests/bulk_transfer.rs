//! End-to-end acceptance for the bulk transfer pipeline (DESIGN.md §12):
//! a multi-kilobyte payload crosses a lossy Lake link bit-exact through
//! full sample-level packet exchanges, with forced packet erasures that
//! the Reed–Solomon outer code absorbs — while the ARQ-only baseline
//! under the same loss pattern cannot finish.

use aqua_channel::environments::{Environment, Site};
use aqua_channel::geometry::Pos;
use aqua_proto::transfer::TransferParams;
use aquapp::bulk::{run_bulk_transfer_with_faults, BulkConfig, BulkReason};
use aquapp::trial::TrialConfig;

/// Deterministic pseudo-random payload (splitmix-style byte stream).
fn payload_bytes(len: usize, mut state: u64) -> Vec<u8> {
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

fn lake_cfg(range_m: f64, params: TransferParams, seed: u64) -> BulkConfig {
    BulkConfig {
        base: TrialConfig::standard(
            Environment::preset(Site::Lake),
            Pos::new(0.0, 0.0, 1.0),
            Pos::new(range_m, 0.0, 1.0),
            seed,
        ),
        params,
        window: 12,
        max_rounds: 16,
        faults: None,
    }
}

#[test]
fn multi_kb_payload_is_bit_exact_over_lossy_lake_link() {
    // 2 KB through RS(16, 12) generations of 30-byte fragments: 69 data
    // fragments + 24 parity = 93 packets minimum. Every 8th sequence
    // number is force-erased on every transmission (≤ 2 per generation,
    // well inside the 4-fragment parity budget) on top of whatever the
    // lake channel itself corrupts.
    let payload = payload_bytes(2048, 0xA11CE);
    let cfg = lake_cfg(15.0, TransferParams::default_rs(), 77);
    let out =
        run_bulk_transfer_with_faults(&cfg, &payload, |_, seq| seq % 8 == 5).expect("valid config");

    assert_eq!(out.reason, BulkReason::Completed);
    assert_eq!(
        out.delivered.as_deref(),
        Some(&payload[..]),
        "2 KB must arrive bit-exact (rounds {}, erasures {}, acks lost {})",
        out.rounds,
        out.erasures,
        out.acks_lost
    );
    assert!(
        out.erasures >= 11,
        "forced erasures surfaced: {}",
        out.erasures
    );
    assert!(out.goodput_bps > 0.0);
    assert!(
        out.airtime_s > 1.0,
        "93+ real packet exchanges take real airtime, got {}",
        out.airtime_s
    );
}

#[test]
fn no_fec_baseline_fails_under_the_same_persistent_loss() {
    // Same persistent erasure pattern, outer code disabled: the two
    // affected fragments per window never get through, so selective
    // repeat alone burns its round budget and cannot reassemble.
    let payload = payload_bytes(512, 0xBEEF);
    let params = TransferParams::default_rs();

    let mut no_fec = lake_cfg(15.0, params.without_fec(), 78);
    no_fec.max_rounds = 6;
    let plain = run_bulk_transfer_with_faults(&no_fec, &payload, |_, seq| seq % 8 == 5)
        .expect("valid config");
    assert_eq!(plain.delivered, None, "ARQ alone cannot complete");
    assert_eq!(
        plain.reason,
        BulkReason::RoundBudget,
        "explicit failure mode"
    );
    assert_eq!(plain.rounds, no_fec.max_rounds);

    let with_fec = lake_cfg(15.0, params, 78);
    let rs = run_bulk_transfer_with_faults(&with_fec, &payload, |_, seq| seq % 8 == 5)
        .expect("valid config");
    assert_eq!(rs.delivered.as_deref(), Some(&payload[..]));
    assert_eq!(rs.reason, BulkReason::Completed);
    assert!(
        rs.packets_sent < plain.packets_sent + plain.rounds * no_fec.window,
        "RS must not need more traffic than the failing baseline's budget"
    );
}
