//! Edge-case behaviour of the packet-exchange protocol.

use aqua_channel::environments::{Environment, Site};
use aqua_channel::geometry::Pos;
use aqua_phy::bandselect::Band;
use aqua_phy::frame::FrameConfig;
use aqua_phy::params::OfdmParams;
use aquapp::trial::{run_trial, Scheme, TrialConfig};

fn cfg(site: Site, dist: f64, seed: u64) -> TrialConfig {
    TrialConfig::standard(
        Environment::preset(site),
        Pos::new(0.0, 0.0, 1.0),
        Pos::new(dist, 0.0, 1.0),
        seed,
    )
}

#[test]
fn hopeless_distance_fails_cleanly() {
    // 300 m in the noisy lake: no detection, and the result reflects a
    // clean failure rather than garbage.
    let r = run_trial(&cfg(Site::Lake, 300.0, 1));
    assert!(!r.preamble_detected);
    assert!(!r.packet_ok);
    assert!(r.bits.is_none());
    assert_eq!(r.coded_bitrate_bps, 0.0);
    assert!(
        (r.coded_ber - 0.5).abs() < 1e-9,
        "failed packets count as coin-flip BER"
    );
}

#[test]
fn fixed_scheme_skips_feedback_but_still_delivers() {
    let mut c = cfg(Site::Bridge, 5.0, 2);
    c.scheme = Scheme::Fixed(Band::new(0, 29));
    let r = run_trial(&c);
    assert!(r.preamble_detected);
    assert!(r.feedback_ok, "fixed schemes report feedback trivially OK");
    assert_eq!(r.band, Some(Band::new(0, 29)));
    assert!(r.packet_ok, "1-2.5 kHz fixed at 5 m bridge should decode");
    assert!(
        (r.coded_bitrate_bps - 1000.0).abs() < 1.0,
        "30 bins = 1000 bps"
    );
}

#[test]
fn stale_band_scheme_uses_the_given_band() {
    let mut c = cfg(Site::Bridge, 5.0, 3);
    let stale = Band::new(40, 50);
    c.scheme = Scheme::Stale(stale);
    let r = run_trial(&c);
    assert_eq!(r.band, Some(stale));
}

#[test]
fn single_bin_band_transmits_at_minimum_rate() {
    let mut c = cfg(Site::Bridge, 5.0, 4);
    c.scheme = Scheme::Fixed(Band::new(30, 30));
    let r = run_trial(&c);
    assert!((r.coded_bitrate_bps - 33.333).abs() < 0.01);
    assert!(r.packet_ok, "single-bin fallback must still deliver");
}

#[test]
fn wider_gap_still_aligns_data() {
    // A slower processing budget (longer silent gap) must not break the
    // symbol-clock alignment of the data section.
    let mut c = cfg(Site::Bridge, 5.0, 5);
    c.frame = FrameConfig {
        gap_symbols: 12,
        ..FrameConfig::default()
    };
    let r = run_trial(&c);
    assert!(r.packet_ok, "12-symbol gap: coded BER {}", r.coded_ber);
}

#[test]
fn alternate_numerology_runs_end_to_end() {
    // 25 Hz spacing changes every layout constant; the whole exchange must
    // still work.
    let mut c = cfg(Site::Bridge, 5.0, 6);
    c.frame = FrameConfig {
        params: OfdmParams::spacing_25hz(),
        ..FrameConfig::default()
    };
    let r = run_trial(&c);
    assert!(r.preamble_detected, "25 Hz preamble");
    assert!(r.packet_ok, "25 Hz decode: coded BER {}", r.coded_ber);
}

#[test]
fn all_zero_and_all_one_payloads_roundtrip() {
    for (seed, payload) in [(7u64, vec![0u8; 16]), (8, vec![1u8; 16])] {
        let mut c = cfg(Site::Bridge, 5.0, seed);
        c.payload = payload.clone();
        let r = run_trial(&c);
        assert_eq!(r.bits, Some(payload), "degenerate payload");
    }
}

#[test]
fn different_device_ids_are_respected() {
    for id in [0u8, 30, 59] {
        let mut c = cfg(Site::Bridge, 5.0, 10 + id as u64);
        c.bob_id = id;
        let r = run_trial(&c);
        assert!(r.id_ok, "ID {id} must decode");
    }
}
