//! Fuzz the block-ACK tone-frame decoder: corrupted, truncated, or
//! arbitrary tone streams must never surface as a valid block ACK — and
//! in particular must never parse as a `done` ACK, which would make the
//! sender abandon a transfer the receiver has not finished. The layered
//! guards divide the work: the length check kills truncations, the XOR
//! checksum tone kills every single-tone corruption outright, and the
//! CRC-16 covers multi-tone corruptions the XOR cannot see (the
//! compensating-pair case is pinned exhaustively in the unit tests).

use aquapp::bulk::{BlockAck, ACK_TONE_BITS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every well-formed frame roundtrips exactly.
    #[test]
    fn ack_roundtrip(
        done in any::<bool>(),
        base in 0u16..2048,
        need in proptest::collection::vec(any::<bool>(), 12),
    ) {
        let ack = BlockAck { done, base, need };
        let tones = ack.to_tones();
        prop_assert_eq!(tones.len(), BlockAck::frame_tones(12));
        let back = BlockAck::from_tones(&tones, 12);
        prop_assert_eq!(back, Some(ack));
    }

    /// Any single-tone corruption is rejected — the XOR checksum tone
    /// guarantees this deterministically, for every position and every
    /// nonzero flip.
    #[test]
    fn ack_single_tone_corruption_rejected(
        done in any::<bool>(),
        base in 0u16..2048,
        need in proptest::collection::vec(any::<bool>(), 12),
        pos in 0usize..BlockAck::frame_tones(12),
        flip in 1usize..(1 << ACK_TONE_BITS),
    ) {
        let mut tones = BlockAck { done, base, need }.to_tones();
        tones[pos] ^= flip;
        prop_assert_eq!(BlockAck::from_tones(&tones, 12), None);
    }

    /// Any truncation is rejected by the length check; so is a frame
    /// read against the wrong window geometry.
    #[test]
    fn ack_truncation_rejected(
        done in any::<bool>(),
        base in 0u16..2048,
        need in proptest::collection::vec(any::<bool>(), 12),
        cut in 1usize..BlockAck::frame_tones(12),
    ) {
        let tones = BlockAck { done, base, need }.to_tones();
        prop_assert_eq!(BlockAck::from_tones(&tones[..tones.len() - cut], 12), None);
        prop_assert_eq!(BlockAck::from_tones(&tones, 8), None);
    }

    /// Arbitrary tone streams never panic; out-of-alphabet symbols are
    /// rejected outright, and nothing random may parse as `done` (the
    /// XOR + CRC make acceptance ~2^-21 — never observed here, and any
    /// accepted frame would still have to carry a coherent payload).
    #[test]
    fn ack_arbitrary_streams_never_parse_done(
        tones in proptest::collection::vec(0usize..64, 0..16),
        window in 1usize..16,
    ) {
        if let Some(ack) = BlockAck::from_tones(&tones, window) {
            prop_assert!(!ack.done, "random stream parsed as a done ACK");
        }
    }
}
