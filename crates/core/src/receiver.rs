//! Streaming receiver: the continuously-listening state machine a phone
//! runs (§3: "preamble detection running continuously in real-time").
//!
//! Audio arrives in blocks from the [`crate::node::AudioBackend`]; every
//! filtered sample is fed once through a [`StreamingDetector`] — the
//! overlap-save front-end that replaced the per-push batch rescans — and
//! the receiver walks the §2.2 sequence from each detection it emits:
//! verify the receiver ID, estimate SNR, select the band, emit the
//! feedback waveform for the app to play, and finally locate and decode
//! the data section — emitting events at each stage.

use aqua_coding::bits::bits_to_value;
use aqua_dsp::fir::{design_bandpass, StreamingFir};
use aqua_dsp::window::Window;
use aqua_phy::bandselect::{best_single_bin, select_band, Band, BandSelectConfig};
use aqua_phy::chanest::estimate;
use aqua_phy::feedback::{decode_tone, encode_feedback};
use aqua_phy::frame::{locate_training, FrameConfig};
use aqua_phy::ofdm::{demodulate_data, DecodeOptions};
use aqua_phy::preamble::{Detection, DetectorConfig, Preamble, StreamingDetector};
use std::collections::VecDeque;

/// Events emitted by the streaming receiver as a packet progresses.
#[derive(Debug, Clone, PartialEq)]
pub enum RxEvent {
    /// A preamble was detected (sliding-correlation metric attached).
    PreambleDetected {
        /// Detection metric (≈1 clean, ≥ accept threshold).
        metric: f64,
    },
    /// The header's ID symbol addressed someone else; the receiver went
    /// back to scanning.
    NotForUs {
        /// The ID that was decoded from the header.
        addressed: usize,
    },
    /// Band selected; the attached waveform is the feedback symbol the
    /// app must transmit now.
    FeedbackReady {
        /// The selected band.
        band: Band,
        /// Feedback symbol samples to play.
        waveform: Vec<f64>,
    },
    /// A packet decoded successfully.
    Packet {
        /// Payload bits.
        bits: Vec<u8>,
        /// Payload reinterpreted as a 16-bit value (two message IDs).
        value: u64,
    },
    /// The data section never arrived or failed to decode.
    DataLost,
}

enum State {
    Scanning,
    /// Waiting for the data section; `data_due` is the stream index where
    /// the training symbol is expected.
    AwaitingData {
        band: Band,
        data_due: usize,
        deadline: usize,
    },
}

/// Continuously-listening receiver. Feed audio blocks with
/// [`StreamingReceiver::push`]; collect events from the return value.
pub struct StreamingReceiver {
    frame: FrameConfig,
    preamble: Preamble,
    my_id: u8,
    band_cfg: BandSelectConfig,
    decode: DecodeOptions,
    /// Bandpassed stream history.
    buffer: Vec<f64>,
    /// Absolute stream index of `buffer[0]`.
    buffer_start: usize,
    front_end: StreamingFir,
    /// Streaming preamble front-end: every filtered sample is pushed once;
    /// detections arrive with absolute stream offsets.
    detector: StreamingDetector,
    /// Detections emitted by the detector, not yet consumed by the state
    /// machine (the detector keeps scanning while data is being decoded).
    detections: VecDeque<Detection>,
    state: State,
    /// Stream index below which detections are stale (already-handled
    /// headers, decoded data sections).
    scanned_to: usize,
}

impl StreamingReceiver {
    /// Creates a receiver listening for packets addressed to `my_id`.
    pub fn new(frame: FrameConfig, my_id: u8) -> Self {
        let params = frame.params;
        let taps = design_bandpass(129, 850.0, 4150.0, params.fs, Window::Hamming);
        let preamble = Preamble::new(params);
        Self {
            frame,
            detector: StreamingDetector::new(preamble.clone(), DetectorConfig::default()),
            preamble,
            my_id,
            band_cfg: BandSelectConfig::default(),
            decode: DecodeOptions {
                bandpass: false, // the streaming front end already filters
                ..DecodeOptions::default()
            },
            buffer: Vec::new(),
            buffer_start: 0,
            front_end: StreamingFir::new(taps),
            detections: VecDeque::new(),
            state: State::Scanning,
            scanned_to: 0,
        }
    }

    /// Feeds one audio block; returns any events it produced.
    pub fn push(&mut self, block: &[f64]) -> Vec<RxEvent> {
        let filtered = self.front_end.process(block);
        self.detections.extend(self.detector.push(&filtered));
        // the feedback protocol gives us only the inter-frame gap to
        // answer, so bound detection latency to one symbol core
        let poll_budget = self.frame.params.n_fft;
        self.detections.extend(self.detector.poll(poll_budget));
        self.buffer.extend(filtered);
        let mut events = Vec::new();
        loop {
            let before = events.len();
            self.step(&mut events);
            if events.len() == before {
                break;
            }
        }
        self.trim();
        events
    }

    fn step(&mut self, events: &mut Vec<RxEvent>) {
        match &self.state {
            State::Scanning => {
                let params = self.frame.params;
                // drop detections inside already-handled stream regions
                while self
                    .detections
                    .front()
                    .is_some_and(|d| d.offset < self.scanned_to.max(self.buffer_start))
                {
                    self.detections.pop_front();
                }
                let Some(det) = self.detections.front().copied() else {
                    return;
                };
                let offset = det.offset - self.buffer_start;
                // need the full header (preamble + ID symbol) in buffer
                if self.buffer.len() < offset + self.preamble.len() + params.symbol_len() {
                    return;
                }
                self.detections.pop_front();
                events.push(RxEvent::PreambleDetected { metric: det.metric });
                let id_start = offset + self.preamble.len();
                let id_window = &self.buffer[id_start..id_start + params.symbol_len()];
                let addressed = decode_tone(&params, id_window, 0.2).map(|(bin, _)| bin);
                if addressed != Some(self.my_id as usize) {
                    events.push(RxEvent::NotForUs {
                        addressed: addressed.unwrap_or(usize::MAX),
                    });
                    self.scanned_to = self.buffer_start + id_start;
                    return;
                }
                let est = estimate(&params, &self.preamble, &self.buffer[offset..]);
                let Some(band) = select_band(&est.snr_db, &self.band_cfg)
                    .or_else(|| best_single_bin(&est.snr_db))
                else {
                    self.scanned_to = self.buffer_start + id_start;
                    return;
                };
                let waveform = encode_feedback(&params, band);
                events.push(RxEvent::FeedbackReady { band, waveform });
                let data_due = self.buffer_start + offset + self.frame.data_start_offset();
                self.state = State::AwaitingData {
                    band,
                    data_due,
                    deadline: data_due + 8 * params.symbol_len(),
                };
                self.scanned_to = self.buffer_start + id_start;
            }
            State::AwaitingData {
                band,
                data_due,
                deadline,
            } => {
                let params = self.frame.params;
                let band = *band;
                let needed =
                    aqua_phy::ofdm::data_section_len(&params, band, self.frame.payload_bits);
                let stream_end = self.buffer_start + self.buffer.len();
                let search = 2 * params.cp;
                if stream_end < data_due + needed + search {
                    if stream_end > deadline + needed {
                        events.push(RxEvent::DataLost);
                        self.state = State::Scanning;
                    }
                    return;
                }
                let expected = data_due - self.buffer_start;
                let found = locate_training(&params, &self.buffer, expected, search, 0.2);
                match found {
                    Some(at) if self.buffer.len() >= at + needed => {
                        let decoded = demodulate_data(
                            &params,
                            band,
                            &self.buffer[at..],
                            self.frame.payload_bits,
                            &self.decode,
                        );
                        let value = bits_to_value(&decoded.bits);
                        events.push(RxEvent::Packet {
                            bits: decoded.bits,
                            value,
                        });
                        self.scanned_to = self.buffer_start + at + needed;
                        self.state = State::Scanning;
                    }
                    _ => {
                        events.push(RxEvent::DataLost);
                        self.state = State::Scanning;
                    }
                }
            }
        }
    }

    /// Drops history the state machine can no longer need: nothing below
    /// the detector's low watermark, the oldest queued detection, or the
    /// awaited data section may go.
    fn trim(&mut self) {
        let mut keep_from = self.detector.low_watermark();
        if let Some(d) = self.detections.front() {
            keep_from = keep_from.min(d.offset);
        }
        if let State::AwaitingData { data_due, .. } = &self.state {
            keep_from = keep_from.min(data_due.saturating_sub(4 * self.frame.params.cp));
        }
        if keep_from > self.buffer_start {
            let drop = (keep_from - self.buffer_start).min(self.buffer.len());
            self.buffer.drain(..drop);
            self.buffer_start += drop;
        }
    }

    /// Bytes of buffered history (diagnostic; bounded by `trim`).
    pub fn buffered_samples(&self) -> usize {
        self.buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_phy::frame::build_header;
    use aqua_phy::ofdm::modulate_data;

    fn make_stream(frame: &FrameConfig, id: u8, payload: &[u8], band: Band) -> Vec<f64> {
        let preamble = Preamble::new(frame.params);
        let mut stream = vec![0.0; 5000];
        stream.extend(build_header(frame, &preamble, id));
        // silence until the data slot on the sender's symbol clock
        stream.resize(5000 + frame.data_start_offset(), 0.0);
        stream.extend(modulate_data(&frame.params, band, payload));
        stream.extend(vec![0.0; 20000]);
        stream
    }

    #[test]
    fn receives_a_packet_from_a_block_stream() {
        let frame = FrameConfig::default();
        let payload: Vec<u8> = (0..16).map(|i| (i % 2) as u8).collect();
        // NOTE: the receiver will select its own band from the clean
        // channel (full band); transmit on the full band to match.
        let band = Band::new(0, 59);
        let stream = make_stream(&frame, 9, &payload, band);
        let mut rx = StreamingReceiver::new(frame, 9);
        let mut events = Vec::new();
        for block in stream.chunks(480) {
            events.extend(rx.push(block));
        }
        assert!(
            events
                .iter()
                .any(|e| matches!(e, RxEvent::PreambleDetected { .. })),
            "{events:?}"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e, RxEvent::FeedbackReady { .. })));
        let packet = events.iter().find_map(|e| match e {
            RxEvent::Packet { bits, .. } => Some(bits.clone()),
            _ => None,
        });
        assert_eq!(packet, Some(payload));
    }

    #[test]
    fn ignores_packets_for_other_receivers() {
        let frame = FrameConfig::default();
        let stream = make_stream(&frame, 12, &vec![1u8; 16], Band::new(0, 59));
        let mut rx = StreamingReceiver::new(frame, 3); // listening as ID 3
        let mut events = Vec::new();
        for block in stream.chunks(1024) {
            events.extend(rx.push(block));
        }
        assert!(events
            .iter()
            .any(|e| matches!(e, RxEvent::NotForUs { addressed: 12 })));
        assert!(!events.iter().any(|e| matches!(e, RxEvent::Packet { .. })));
    }

    #[test]
    fn reports_data_lost_when_sender_goes_silent() {
        let frame = FrameConfig::default();
        let preamble = Preamble::new(frame.params);
        let mut stream = vec![0.0; 3000];
        stream.extend(build_header(&frame, &preamble, 5));
        stream.extend(vec![0.0; frame.data_start_offset() + 40_000]); // no data follows
        let mut rx = StreamingReceiver::new(frame, 5);
        let mut events = Vec::new();
        for block in stream.chunks(480) {
            events.extend(rx.push(block));
        }
        assert!(events
            .iter()
            .any(|e| matches!(e, RxEvent::FeedbackReady { .. })));
        assert!(events.iter().any(|e| matches!(e, RxEvent::DataLost)));
    }

    #[test]
    fn buffer_stays_bounded_during_long_silence() {
        let frame = FrameConfig::default();
        let mut rx = StreamingReceiver::new(frame, 1);
        for _ in 0..200 {
            rx.push(&vec![0.0; 4800]); // 20 s of silence
        }
        assert!(
            rx.buffered_samples() < 100_000,
            "buffer grew to {}",
            rx.buffered_samples()
        );
    }

    #[test]
    fn two_packets_back_to_back_both_decode() {
        let frame = FrameConfig::default();
        let p1: Vec<u8> = (0..16).map(|i| (i % 2) as u8).collect();
        let p2: Vec<u8> = (0..16).map(|i| ((i / 2) % 2) as u8).collect();
        let band = Band::new(0, 59);
        let mut stream = make_stream(&frame, 7, &p1, band);
        stream.extend(make_stream(&frame, 7, &p2, band));
        let mut rx = StreamingReceiver::new(frame, 7);
        let mut packets = Vec::new();
        for block in stream.chunks(960) {
            for e in rx.push(block) {
                if let RxEvent::Packet { bits, .. } = e {
                    packets.push(bits);
                }
            }
        }
        assert_eq!(packets, vec![p1, p2]);
    }
}
