//! Bulk transfer engine: selective-repeat ARQ over the packet trial stack.
//!
//! Chat messages ride stop-and-wait ([`crate::arq`]); a file or image
//! cannot — one round trip per 16-bit packet would take minutes per
//! kilobyte. This module drives the [`aqua_proto::transfer`] data plane
//! (segmentation + Reed–Solomon outer code + reassembly) through full
//! sample-level packet exchanges:
//!
//! - Alice sends a *window* of fragments back to back, each one a complete
//!   OFDM packet exchange ([`run_trial`]) carrying `seq | payload | crc16`.
//! - Bob parses each decoded payload with [`Fragment::from_bits`]; a CRC
//!   failure (or a lost packet) is an *erasure* the outer RS code can
//!   absorb without any retransmission.
//! - After the window Bob answers with a **block ACK** on the reverse
//!   link: a short frame of single-tone symbols (the paper's ACK
//!   primitive, §2.3) carrying a done flag, the lowest sequence number he
//!   still needs, and a bitmap of needs over the next window. A checksum
//!   tone guards the frame; any undecodable or checksum-failing tone
//!   discards the whole block ACK, and Alice simply resends — the
//!   receiver's duplicate suppression absorbs the overlap.
//! - Alice retires acknowledged fragments and refills the window with the
//!   lowest still-pending sequence numbers (selective repeat: only what
//!   the receiver actually needs is retransmitted, and fragments of
//!   RS-complete generations are never chased at all).
//!
//! Airtime accounting matches [`crate::arq`]: every forward attempt pays
//! header + gap (+ data section when transmitted), every block ACK pays
//! its tone symbols.

use crate::arq::attempt_airtime_s;
use crate::trial::{run_trial, TrialConfig};
use aqua_channel::link::{Link, LinkConfig, SAMPLE_RATE};
use aqua_phy::feedback::{decode_tone, encode_tone};
use aqua_phy::params::OfdmParams;
use aqua_proto::transfer::{Accept, Fragment, Reassembler, TransferParams, TransferPlan};

/// Payload bits carried per block-ACK tone symbol. The tone alphabet has
/// `num_bins` = 60 symbols; 5 bits (32 values) leaves headroom so a
/// slightly mistuned decode cannot alias into a valid symbol.
pub const ACK_TONE_BITS: usize = 5;

/// Bin offset of the second (frequency-diversity) copy of each block-ACK
/// tone: 28 bins = 1.4 kHz, the largest shift that keeps the shifted
/// alphabet (`31 + 28 = 59`) inside the 60 usable bins.
pub const ACK_DIVERSITY_SHIFT: usize = 28;

/// Configuration of one bulk transfer run.
#[derive(Debug, Clone)]
pub struct BulkConfig {
    /// Link/scheme template; `payload` and `frame.payload_bits` are
    /// overridden per fragment.
    pub base: TrialConfig,
    /// Fragment/generation geometry (see [`TransferParams`]).
    pub params: TransferParams,
    /// Fragments sent back to back between block ACKs.
    pub window: usize,
    /// Round budget before the sender gives up.
    pub max_rounds: usize,
}

/// Result of a bulk transfer run.
#[derive(Debug, Clone)]
pub struct BulkOutcome {
    /// Reassembled payload when the receiver completed (bit-exact), `None`
    /// otherwise.
    pub delivered: Option<Vec<u8>>,
    /// Window rounds used.
    pub rounds: usize,
    /// Forward packet transmissions.
    pub packets_sent: usize,
    /// Transmissions that reached the reassembler as *fresh* fragments.
    pub packets_delivered: usize,
    /// Transmissions lost, CRC-failed, or force-dropped (outer-code
    /// erasures).
    pub erasures: usize,
    /// Retransmissions the receiver suppressed as duplicates.
    pub duplicates: usize,
    /// Block-ACK frames the sender could not decode.
    pub acks_lost: usize,
    /// Total airtime in seconds (forward packets + block-ACK tones).
    pub airtime_s: f64,
    /// `total_bytes * 8 / airtime_s` when delivered, else 0.
    pub goodput_bps: f64,
}

/// Block-ACK frame content: done flag, cumulative base, per-seq need bits.
struct BlockAck {
    done: bool,
    base: u16,
    need: Vec<bool>,
}

impl BlockAck {
    fn to_tones(&self) -> Vec<usize> {
        let mut bits: Vec<u8> = vec![u8::from(self.done)];
        bits.extend((0..16).rev().map(|i| ((self.base >> i) & 1) as u8));
        bits.extend(self.need.iter().map(|&n| u8::from(n)));
        while bits.len() % ACK_TONE_BITS != 0 {
            bits.push(0);
        }
        let mut tones: Vec<usize> = bits
            .chunks(ACK_TONE_BITS)
            .map(|c| c.iter().fold(0usize, |v, &b| (v << 1) | b as usize))
            .collect();
        let check = tones.iter().fold(0usize, |a, &t| a ^ t);
        tones.push(check);
        tones
    }

    fn from_tones(tones: &[usize], window: usize) -> Option<Self> {
        let payload_tones = (17 + window).div_ceil(ACK_TONE_BITS);
        if tones.len() != payload_tones + 1 {
            return None;
        }
        let (body, check) = tones.split_at(payload_tones);
        if body.iter().fold(0usize, |a, &t| a ^ t) != check[0] {
            return None;
        }
        let bits: Vec<u8> = body
            .iter()
            .flat_map(|&t| (0..ACK_TONE_BITS).rev().map(move |i| ((t >> i) & 1) as u8))
            .collect();
        let done = bits[0] == 1;
        let base = bits[1..17].iter().fold(0u16, |v, &b| (v << 1) | b as u16);
        let need = bits[17..17 + window].iter().map(|&b| b == 1).collect();
        Some(Self { done, base, need })
    }

    /// Tone symbols in a block-ACK frame for a given window size.
    fn frame_tones(window: usize) -> usize {
        (17 + window).div_ceil(ACK_TONE_BITS) + 1
    }
}

/// Runs a bulk transfer of `data` and returns the outcome.
pub fn run_bulk_transfer(cfg: &BulkConfig, data: &[u8]) -> BulkOutcome {
    run_bulk_transfer_with_faults(cfg, data, |_, _| false)
}

/// [`run_bulk_transfer`] with a fault hook: `lose(round, seq)` forces that
/// forward transmission to vanish (a packet erasure), independent of the
/// channel — the deterministic loss patterns the RS-vs-no-FEC experiments
/// and tests are built on.
pub fn run_bulk_transfer_with_faults(
    cfg: &BulkConfig,
    data: &[u8],
    lose: impl Fn(usize, u16) -> bool,
) -> BulkOutcome {
    assert!(cfg.window >= 1, "window must be positive");
    assert!(cfg.max_rounds >= 1);
    let plan = TransferPlan::new(data.len(), cfg.params);
    let frags = plan.segment(data);
    let params: OfdmParams = cfg.base.frame.params;

    let mut pending: Vec<u16> = (0..plan.total_frags() as u16).collect();
    let mut reasm = Reassembler::new(plan);
    let mut out = BulkOutcome {
        delivered: None,
        rounds: 0,
        packets_sent: 0,
        packets_delivered: 0,
        erasures: 0,
        duplicates: 0,
        acks_lost: 0,
        airtime_s: 0.0,
        goodput_bps: 0.0,
    };

    let mut sender_done = false;
    while out.rounds < cfg.max_rounds && !sender_done && !pending.is_empty() {
        let round = out.rounds;
        out.rounds += 1;
        let burst: Vec<u16> = pending.iter().take(cfg.window).copied().collect();

        // ---- forward burst: one full packet exchange per fragment ----
        for &seq in &burst {
            let mut t = cfg.base.clone();
            t.payload = frags[seq as usize].to_bits();
            t.frame.payload_bits = t.payload.len();
            t.seed = cfg
                .base
                .seed
                .wrapping_add(0x9E37_79B9 * (1 + round as u64))
                .wrapping_add(7919 * seq as u64);
            let trial = run_trial(&t);
            out.packets_sent += 1;
            out.airtime_s += attempt_airtime_s(
                &t.frame,
                trial.band.map(|b| b.len()).unwrap_or(1),
                trial.data_phase,
            );
            let frag = trial
                .bits
                .filter(|_| !lose(round, seq))
                .and_then(|b| Fragment::from_bits(&b));
            match frag {
                Some(f) => match reasm.accept(&f) {
                    Accept::Fresh => out.packets_delivered += 1,
                    Accept::Duplicate => out.duplicates += 1,
                    Accept::Invalid => out.erasures += 1,
                },
                None => out.erasures += 1,
            }
        }

        // ---- block ACK on the reverse link ----
        let needed = reasm.missing();
        let base = needed.first().copied().unwrap_or(plan.total_frags() as u16);
        let ack = BlockAck {
            done: reasm.complete(),
            base,
            need: (0..cfg.window as u16)
                .map(|i| needed.binary_search(&(base + i)).is_ok())
                .collect(),
        };
        let mut back = Link::new(LinkConfig {
            fs: SAMPLE_RATE,
            env: cfg.base.env.clone(),
            tx_device: cfg.base.bob_device,
            rx_device: cfg.base.alice_device,
            tx_traj: cfg.base.bob_traj.clone(),
            rx_traj: cfg.base.alice_traj.clone(),
            noise: true,
            impulses: false,
            seed: cfg.base.seed ^ 0xB10C ^ ((round as u64) << 17),
        });
        // Each tone goes out twice with FREQUENCY diversity: copy 0 on bin
        // `v`, copy 1 on bin `v + ACK_DIVERSITY_SHIFT`. The lake channel is
        // static, so a multipath notch on one subcarrier is permanent —
        // retransmitting the same bin can never recover it, but a notch at
        // both bins 1.4 kHz apart is rare. The decoder takes the
        // highest-quality copy that maps back to a valid symbol; the
        // checksum tone still guards the whole frame.
        let mut rx_tones = Vec::new();
        for (i, &tone) in ack.to_tones().iter().enumerate() {
            let mut best: Option<(usize, f64)> = None;
            for copy in 0..2usize {
                let bin = tone + copy * ACK_DIVERSITY_SHIFT;
                let t0 = (2 * i + copy) as f64 * params.symbol_duration_s();
                let rx = back.transmit(&encode_tone(&params, bin), t0);
                out.airtime_s += params.symbol_duration_s();
                let decoded = decode_tone(&params, &rx, 0.25).and_then(|(b, q)| {
                    let v = b.checked_sub(copy * ACK_DIVERSITY_SHIFT)?;
                    (v < 1 << ACK_TONE_BITS).then_some((v, q))
                });
                if let Some(d) = decoded {
                    if best.map(|b| d.1 > b.1).unwrap_or(true) {
                        best = Some(d);
                    }
                }
            }
            match best {
                Some((bin, _)) => rx_tones.push(bin),
                None => break,
            }
        }
        let decoded = (rx_tones.len() == BlockAck::frame_tones(cfg.window))
            .then(|| BlockAck::from_tones(&rx_tones, cfg.window))
            .flatten();
        match decoded {
            Some(ack) => {
                if ack.done {
                    sender_done = true;
                }
                pending.retain(|&s| {
                    if s < ack.base {
                        return false; // cumulative: nothing below base is needed
                    }
                    let i = (s - ack.base) as usize;
                    // inside the reported bitmap: keep only if still needed;
                    // beyond it: no information, keep pending
                    i >= ack.need.len() || ack.need[i]
                });
            }
            None => out.acks_lost += 1,
        }
    }

    out.delivered = reasm.assemble();
    if let Some(d) = &out.delivered {
        out.goodput_bps = d.len() as f64 * 8.0 / out.airtime_s;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_channel::environments::{Environment, Site};
    use aqua_channel::geometry::Pos;

    fn demo_payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 197 + 31) as u8).collect()
    }

    fn bridge_cfg(params: TransferParams) -> BulkConfig {
        BulkConfig {
            base: TrialConfig::standard(
                Environment::preset(Site::Bridge),
                Pos::new(0.0, 0.0, 1.0),
                Pos::new(5.0, 0.0, 1.0),
                4242,
            ),
            params,
            window: 6,
            max_rounds: 20,
        }
    }

    #[test]
    fn block_ack_tone_frame_roundtrip() {
        for (done, base, pattern) in [
            (false, 0u16, 0b101010u32),
            (true, 137, 0),
            (false, 999, 0b111111),
        ] {
            let ack = BlockAck {
                done,
                base,
                need: (0..6).map(|i| (pattern >> i) & 1 == 1).collect(),
            };
            let tones = ack.to_tones();
            assert_eq!(tones.len(), BlockAck::frame_tones(6));
            assert!(tones.iter().all(|&t| t < 32));
            let back = BlockAck::from_tones(&tones, 6).expect("roundtrip");
            assert_eq!(back.done, done);
            assert_eq!(back.base, base);
            assert_eq!(back.need, ack.need);
        }
    }

    #[test]
    fn block_ack_rejects_corrupted_tones() {
        let ack = BlockAck {
            done: false,
            base: 42,
            need: vec![true, false, true, true, false, false],
        };
        let tones = ack.to_tones();
        for i in 0..tones.len() {
            let mut bad = tones.clone();
            bad[i] ^= 0b00100; // flip one bit of one tone
            assert!(
                BlockAck::from_tones(&bad, 6).is_none(),
                "corrupted tone {i} accepted"
            );
        }
        assert!(BlockAck::from_tones(&tones[..tones.len() - 1], 6).is_none());
    }

    #[test]
    fn clean_link_transfers_in_one_round_per_window() {
        // 120 bytes / 10 per frag = 12 data frags; RS(8+2) adds 4 parity
        let cfg = bridge_cfg(TransferParams {
            frag_bytes: 10,
            gen_data: 8,
            parity: 2,
        });
        let payload = demo_payload(120);
        let out = run_bulk_transfer(&cfg, &payload);
        assert_eq!(out.delivered.as_deref(), Some(&payload[..]), "bit-exact");
        assert_eq!(out.erasures, 0, "clean link");
        assert_eq!(out.duplicates, 0);
        assert!(out.goodput_bps > 0.0);
        // 16 fragments through a window of 6 = 3 rounds minimum
        assert_eq!(out.rounds, 3);
        assert_eq!(out.packets_sent, 16);
    }

    #[test]
    fn outer_code_absorbs_persistent_erasures_where_no_fec_fails() {
        // A persistent erasure pattern: every 5th fragment vanishes on
        // EVERY transmission (a fragment whose band placement sits in a
        // stable fade). Per generation that is at most 2 losses — within
        // the RS(10, 8) budget — so the outer code delivers regardless;
        // the ARQ-only baseline keeps chasing the same two fragments and
        // never completes.
        let with_fec = bridge_cfg(TransferParams {
            frag_bytes: 10,
            gen_data: 8,
            parity: 2,
        });
        let mut no_fec = BulkConfig {
            params: with_fec.params.without_fec(),
            ..with_fec.clone()
        };
        no_fec.max_rounds = 6;
        let payload = demo_payload(120);
        let lose = |_round: usize, seq: u16| seq % 5 == 3;

        let rs = run_bulk_transfer_with_faults(&with_fec, &payload, lose);
        assert_eq!(rs.delivered.as_deref(), Some(&payload[..]), "bit-exact");
        assert!(rs.erasures >= 3, "forced losses surfaced as erasures");
        // 16 fragments through a window of 6 need 3 rounds even lossless:
        // the parity fragments, not extra rounds, absorb the losses
        assert_eq!(rs.rounds, 3, "no extra rounds over the lossless minimum");

        let plain = run_bulk_transfer_with_faults(&no_fec, &payload, lose);
        assert_eq!(plain.delivered, None, "ARQ alone cannot finish");
        assert_eq!(plain.rounds, no_fec.max_rounds, "burned the round budget");
        assert!(
            plain.packets_sent > plain_data_frags(&no_fec, &payload),
            "kept retransmitting the lost fragments"
        );
    }

    fn plain_data_frags(cfg: &BulkConfig, payload: &[u8]) -> usize {
        payload.len().div_ceil(cfg.params.frag_bytes)
    }
}
