//! Bulk transfer engine: selective-repeat ARQ over the packet trial stack.
//!
//! Chat messages ride stop-and-wait ([`crate::arq`]); a file or image
//! cannot — one round trip per 16-bit packet would take minutes per
//! kilobyte. This module drives the [`aqua_proto::transfer`] data plane
//! (segmentation + Reed–Solomon outer code + reassembly) through full
//! sample-level packet exchanges:
//!
//! - Alice sends a *window* of fragments back to back, each one a complete
//!   OFDM packet exchange ([`run_trial`]) carrying `seq | payload | crc16`.
//! - Bob parses each decoded payload with [`Fragment::from_bits`]; a CRC
//!   failure (or a lost packet) is an *erasure* the outer RS code can
//!   absorb without any retransmission.
//! - After the window Bob answers with a **block ACK** on the reverse
//!   link: a short frame of single-tone symbols (the paper's ACK
//!   primitive, §2.3) carrying a done flag, the lowest sequence number he
//!   still needs, and a bitmap of needs over the next window. A CRC-16
//!   plus a checksum tone guard the frame; any undecodable, checksum- or
//!   CRC-failing frame discards the whole block ACK, and Alice simply
//!   resends — the receiver's duplicate suppression absorbs the overlap.
//! - Alice retires acknowledged fragments and refills the window with the
//!   lowest still-pending sequence numbers (selective repeat: only what
//!   the receiver actually needs is retransmitted, and fragments of
//!   RS-complete generations are never chased at all).
//!
//! Two sender engines share that machinery (DESIGN.md §13):
//!
//! - [`run_bulk_transfer`] — the static engine: fixed window, all parity
//!   transmitted eagerly, fixed round budget. Predictable, and the
//!   baseline the fault experiments compare against.
//! - [`run_adaptive_transfer`] — the robust engine: a
//!   [`DegradationLadder`] shrinks the window and releases per-generation
//!   parity as the measured per-round erasure rate climbs (and recovers
//!   when it clears); an [`RttEstimator`] paces everything with capped,
//!   jittered backoff; and **suspend/resume** parks the transfer when the
//!   link goes fully dead (a blackout), probing at backed-off intervals
//!   instead of burning the round budget, then resuming the window where
//!   it left off.
//!
//! Time-varying impairments come from the [`aqua_channel::fault`] layer:
//! both engines advance a session clock (airtime + suspension waits) and
//! evaluate the configured [`FaultSchedule`] on it, so a 30 s blackout in
//! schedule time covers exactly the packets whose exchanges overlap it.
//!
//! Airtime accounting matches [`crate::arq`]: every forward attempt pays
//! header + gap (+ data section when transmitted), every block ACK pays
//! its tone symbols. Suspension waits accrue separately
//! ([`BulkOutcome::suspended_s`]) — a parked radio is not airtime.

use crate::arq::{attempt_airtime_s, RttEstimator};
use crate::trial::{run_trial, TrialConfig};
use aqua_channel::fault::FaultSchedule;
use aqua_channel::link::{Link, LinkConfig, SAMPLE_RATE};
use aqua_coding::bits::{bits_to_bytes, bits_to_value, value_to_bits};
use aqua_coding::crc::crc16;
use aqua_phy::feedback::{decode_tone, encode_tone};
use aqua_phy::params::OfdmParams;
use aqua_proto::transfer::{
    Accept, Fragment, PlanError, Reassembler, TransferParams, TransferPlan,
};

/// Payload bits carried per block-ACK tone symbol. The tone alphabet has
/// `num_bins` = 60 symbols; 5 bits (32 values) leaves headroom so a
/// slightly mistuned decode cannot alias into a valid symbol.
pub const ACK_TONE_BITS: usize = 5;

/// Bin offset of the second (frequency-diversity) copy of each block-ACK
/// tone: 28 bins = 1.4 kHz, the largest shift that keeps the shifted
/// alphabet (`31 + 28 = 59`) inside the 60 usable bins.
pub const ACK_DIVERSITY_SHIFT: usize = 28;

/// CRC bits appended to the block-ACK content before tone packing. The
/// per-tone XOR checksum alone admits compensating two-tone corruptions;
/// the CRC-16 makes a falsely *accepted* frame (and in particular a
/// corrupted frame parsing as a valid `done` ACK) astronomically
/// unlikely — the property the ACK fuzz suite pins.
pub const ACK_CRC_BITS: usize = 16;

/// All-erasure rounds with no decodable block ACK before the adaptive
/// sender declares the link dead and suspends.
pub const SUSPEND_AFTER_DEAD_ROUNDS: usize = 2;

/// Total resume probes an adaptive transfer may spend across all
/// suspensions before giving up with [`BulkReason::Blackout`].
pub const PROBE_BUDGET: usize = 24;

/// Floor/ceiling of the adaptive engine's retransmission timeout.
const MIN_RTO_S: f64 = 1.0;
const MAX_RTO_S: f64 = 16.0;

/// Configuration of one bulk transfer run.
#[derive(Debug, Clone)]
pub struct BulkConfig {
    /// Link/scheme template; `payload` and `frame.payload_bits` are
    /// overridden per fragment.
    pub base: TrialConfig,
    /// Fragment/generation geometry (see [`TransferParams`]).
    pub params: TransferParams,
    /// Fragments sent back to back between block ACKs (the adaptive
    /// engine may shrink below this under degradation).
    pub window: usize,
    /// Round budget before the sender gives up.
    pub max_rounds: usize,
    /// Time-varying channel impairments, evaluated on the transfer's
    /// session clock. `None` is the exact zero-fault pipeline.
    pub faults: Option<FaultSchedule>,
}

/// Why a bulk transfer rejected its configuration before transmitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BulkError {
    /// The transfer geometry itself is degenerate.
    Plan(PlanError),
    /// `window` was 0.
    ZeroWindow,
    /// `max_rounds` was 0.
    ZeroRounds,
}

impl std::fmt::Display for BulkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Plan(e) => write!(f, "transfer plan: {e}"),
            Self::ZeroWindow => write!(f, "window must be positive"),
            Self::ZeroRounds => write!(f, "round budget must be positive"),
        }
    }
}

impl std::error::Error for BulkError {}

impl From<PlanError> for BulkError {
    fn from(e: PlanError) -> Self {
        Self::Plan(e)
    }
}

/// How a bulk transfer ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BulkReason {
    /// The receiver reassembled the full payload (bit-exact).
    Completed,
    /// The sender burned its round budget without completing.
    RoundBudget,
    /// The adaptive sender suspended on a dead link and exhausted its
    /// probe budget without ever hearing the receiver again.
    Blackout,
}

/// Result of a bulk transfer run.
#[derive(Debug, Clone)]
pub struct BulkOutcome {
    /// Reassembled payload when the receiver completed (bit-exact), `None`
    /// otherwise.
    pub delivered: Option<Vec<u8>>,
    /// Why the transfer ended (explicit — no inferring failure modes from
    /// round counts).
    pub reason: BulkReason,
    /// Window rounds used (suspend-mode probes are not rounds).
    pub rounds: usize,
    /// Forward packet transmissions (including resume probes).
    pub packets_sent: usize,
    /// Transmissions that reached the reassembler as *fresh* fragments.
    pub packets_delivered: usize,
    /// Transmissions lost, CRC-failed, or force-dropped (outer-code
    /// erasures).
    pub erasures: usize,
    /// Retransmissions the receiver suppressed as duplicates.
    pub duplicates: usize,
    /// Block-ACK frames the sender could not decode.
    pub acks_lost: usize,
    /// Times the adaptive sender suspended on a dead link.
    pub suspensions: usize,
    /// Resume probes sent while suspended.
    pub probes: usize,
    /// Seconds spent parked in suspension waits (not airtime).
    pub suspended_s: f64,
    /// Total airtime in seconds (forward packets + block-ACK tones).
    pub airtime_s: f64,
    /// `total_bytes * 8 / airtime_s` when delivered, else 0.
    pub goodput_bps: f64,
}

impl BulkOutcome {
    fn start() -> Self {
        Self {
            delivered: None,
            reason: BulkReason::RoundBudget,
            rounds: 0,
            packets_sent: 0,
            packets_delivered: 0,
            erasures: 0,
            duplicates: 0,
            acks_lost: 0,
            suspensions: 0,
            probes: 0,
            suspended_s: 0.0,
            airtime_s: 0.0,
            goodput_bps: 0.0,
        }
    }
}

/// Block-ACK frame content: done flag, cumulative base, per-seq need
/// bits. Public so the fuzz suite can drive the tone codec directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockAck {
    /// Receiver has reassembled the full payload.
    pub done: bool,
    /// Lowest sequence number the receiver still needs (cumulative ACK
    /// of everything below).
    pub base: u16,
    /// Need bitmap over `base..base + window`.
    pub need: Vec<bool>,
}

impl BlockAck {
    /// The semantic content bits: done(1) | base(16) | need(window).
    fn content_bits(&self) -> Vec<u8> {
        let mut bits: Vec<u8> = vec![u8::from(self.done)];
        bits.extend((0..16).rev().map(|i| ((self.base >> i) & 1) as u8));
        bits.extend(self.need.iter().map(|&n| u8::from(n)));
        bits
    }

    /// Serializes to tone symbols: content bits + CRC-16 over the packed
    /// content, zero-padded to a tone boundary, plus one XOR checksum
    /// tone.
    pub fn to_tones(&self) -> Vec<usize> {
        let mut bits = self.content_bits();
        let crc = crc16(&bits_to_bytes(&bits));
        bits.extend(value_to_bits(crc as u64, ACK_CRC_BITS));
        while bits.len() % ACK_TONE_BITS != 0 {
            bits.push(0);
        }
        let mut tones: Vec<usize> = bits
            .chunks(ACK_TONE_BITS)
            .map(|c| c.iter().fold(0usize, |v, &b| (v << 1) | b as usize))
            .collect();
        let check = tones.iter().fold(0usize, |a, &t| a ^ t);
        tones.push(check);
        tones
    }

    /// Parses tone symbols for the given window size. Returns `None` on
    /// any length mismatch, XOR-checksum failure, nonzero padding, or
    /// CRC-16 mismatch — a corrupted or truncated frame must never
    /// surface as a valid block ACK.
    pub fn from_tones(tones: &[usize], window: usize) -> Option<Self> {
        let content_len = 17 + window;
        let payload_tones = (content_len + ACK_CRC_BITS).div_ceil(ACK_TONE_BITS);
        if tones.len() != payload_tones + 1 {
            return None;
        }
        if tones.iter().any(|&t| t >= 1 << ACK_TONE_BITS) {
            return None;
        }
        let (body, check) = tones.split_at(payload_tones);
        if body.iter().fold(0usize, |a, &t| a ^ t) != check[0] {
            return None;
        }
        let bits: Vec<u8> = body
            .iter()
            .flat_map(|&t| (0..ACK_TONE_BITS).rev().map(move |i| ((t >> i) & 1) as u8))
            .collect();
        // zero padding between the CRC and the tone boundary is part of
        // the frame: a flipped padding bit is corruption, not slack
        if bits[content_len + ACK_CRC_BITS..].iter().any(|&b| b != 0) {
            return None;
        }
        let content = &bits[..content_len];
        let crc = bits_to_value(&bits[content_len..content_len + ACK_CRC_BITS]) as u16;
        if crc16(&bits_to_bytes(content)) != crc {
            return None;
        }
        let done = content[0] == 1;
        let base = content[1..17]
            .iter()
            .fold(0u16, |v, &b| (v << 1) | b as u16);
        let need = content[17..].iter().map(|&b| b == 1).collect();
        Some(Self { done, base, need })
    }

    /// Tone symbols in a block-ACK frame for a given window size.
    pub fn frame_tones(window: usize) -> usize {
        (17 + window + ACK_CRC_BITS).div_ceil(ACK_TONE_BITS) + 1
    }
}

/// Rejects degenerate engine knobs with a typed error.
fn validate(cfg: &BulkConfig) -> Result<(), BulkError> {
    if cfg.window == 0 {
        return Err(BulkError::ZeroWindow);
    }
    if cfg.max_rounds == 0 {
        return Err(BulkError::ZeroRounds);
    }
    Ok(())
}

/// The receiver's current block ACK.
fn build_ack(reasm: &Reassembler, window: usize, total_frags: u16) -> BlockAck {
    let needed = reasm.missing();
    let base = needed.first().copied().unwrap_or(total_frags);
    BlockAck {
        done: reasm.complete(),
        base,
        need: (0..window as u16)
            .map(|i| needed.binary_search(&(base + i)).is_ok())
            .collect(),
    }
}

/// One forward fragment exchange at session time `now_s`: a full packet
/// trial carrying the fragment, fed to the reassembler. Returns whether
/// the receiver heard it (fresh or duplicate) and the airtime paid.
#[allow(clippy::too_many_arguments)]
fn send_fragment(
    cfg: &BulkConfig,
    frag: &Fragment,
    seed: u64,
    now_s: f64,
    force_lose: bool,
    reasm: &mut Reassembler,
    out: &mut BulkOutcome,
) -> (bool, f64) {
    let mut t = cfg.base.clone();
    t.payload = frag.to_bits();
    t.frame.payload_bits = t.payload.len();
    t.seed = seed;
    t.faults = cfg.faults.clone();
    t.start_s = now_s;
    let trial = run_trial(&t);
    out.packets_sent += 1;
    let air = attempt_airtime_s(
        &t.frame,
        trial.band.map(|b| b.len()).unwrap_or(1),
        trial.data_phase,
    );
    out.airtime_s += air;
    let parsed = trial
        .bits
        .filter(|_| !force_lose)
        .and_then(|b| Fragment::from_bits(&b));
    let heard = match parsed {
        Some(f) => match reasm.accept(&f) {
            Accept::Fresh => {
                out.packets_delivered += 1;
                true
            }
            Accept::Duplicate => {
                out.duplicates += 1;
                true
            }
            Accept::Invalid => {
                out.erasures += 1;
                false
            }
        },
        None => {
            out.erasures += 1;
            false
        }
    };
    (heard, air)
}

/// The block-ACK exchange on the reverse link at session time `now_s`.
///
/// Each tone goes out twice with FREQUENCY diversity: copy 0 on bin `v`,
/// copy 1 on bin `v + ACK_DIVERSITY_SHIFT`. The lake channel is static,
/// so a multipath notch on one subcarrier is permanent — retransmitting
/// the same bin can never recover it, but a notch at both bins 1.4 kHz
/// apart is rare. The decoder takes the highest-quality copy that maps
/// back to a valid symbol; the CRC and checksum tone still guard the
/// whole frame. Returns the decoded ACK (if any) and the airtime paid.
fn block_ack_exchange(
    cfg: &BulkConfig,
    ack: &BlockAck,
    link_seed: u64,
    now_s: f64,
) -> (Option<BlockAck>, f64) {
    let params: OfdmParams = cfg.base.frame.params;
    let faults = cfg.faults.as_ref().map(|f| (f, now_s));
    let mut back = Link::new(LinkConfig {
        fs: SAMPLE_RATE,
        env: cfg.base.env.clone(),
        tx_device: cfg.base.bob_device,
        rx_device: cfg.base.alice_device,
        tx_traj: cfg.base.bob_traj.clone(),
        rx_traj: cfg.base.alice_traj.clone(),
        noise: true,
        impulses: false,
        seed: link_seed,
    });
    let mut airtime_s = 0.0;
    let mut rx_tones = Vec::new();
    for (i, &tone) in ack.to_tones().iter().enumerate() {
        let mut best: Option<(usize, f64)> = None;
        for copy in 0..2usize {
            let bin = tone + copy * ACK_DIVERSITY_SHIFT;
            let t0 = (2 * i + copy) as f64 * params.symbol_duration_s();
            let rx = back.transmit_with_faults(&encode_tone(&params, bin), t0, faults);
            airtime_s += params.symbol_duration_s();
            let decoded = decode_tone(&params, &rx, 0.25).and_then(|(b, q)| {
                let v = b.checked_sub(copy * ACK_DIVERSITY_SHIFT)?;
                (v < 1 << ACK_TONE_BITS).then_some((v, q))
            });
            if let Some(d) = decoded {
                if best.map(|b| d.1 > b.1).unwrap_or(true) {
                    best = Some(d);
                }
            }
        }
        match best {
            Some((bin, _)) => rx_tones.push(bin),
            None => break,
        }
    }
    let decoded = (rx_tones.len() == BlockAck::frame_tones(cfg.window))
        .then(|| BlockAck::from_tones(&rx_tones, cfg.window))
        .flatten();
    (decoded, airtime_s)
}

/// Applies a decoded block ACK to the sender's pending set: cumulative
/// retire below `base`, bitmap retire/keep inside the window, and
/// re-insertion of receiver-demanded sequence numbers — but only ones
/// the sender has *released* (the receiver's `missing()` view includes
/// parity of every incomplete generation; demand alone must not defeat
/// the ladder's parity withholding on a clean link).
fn apply_ack(pending: &mut Vec<u16>, ack: &BlockAck, total_frags: u16, released: &[bool]) {
    pending.retain(|&s| {
        if s < ack.base {
            return false; // cumulative: nothing below base is needed
        }
        let i = (s - ack.base) as usize;
        // inside the reported bitmap: keep only if still needed;
        // beyond it: no information, keep pending
        i >= ack.need.len() || ack.need[i]
    });
    for (i, &needed) in ack.need.iter().enumerate() {
        if !needed {
            continue;
        }
        let s = ack.base + i as u16;
        if s >= total_frags {
            break;
        }
        if !released[s as usize] {
            continue;
        }
        if let Err(pos) = pending.binary_search(&s) {
            pending.insert(pos, s);
        }
    }
}

/// Runs a bulk transfer of `data` with the static engine and returns the
/// outcome, or a typed error on degenerate configuration.
pub fn run_bulk_transfer(cfg: &BulkConfig, data: &[u8]) -> Result<BulkOutcome, BulkError> {
    run_bulk_transfer_with_faults(cfg, data, |_, _| false)
}

/// [`run_bulk_transfer`] with a loss hook: `lose(round, seq)` forces that
/// forward transmission to vanish (a packet erasure), independent of the
/// channel — the deterministic loss patterns the RS-vs-no-FEC experiments
/// and tests are built on. (Time-varying channel impairments are the
/// [`BulkConfig::faults`] schedule instead.)
pub fn run_bulk_transfer_with_faults(
    cfg: &BulkConfig,
    data: &[u8],
    lose: impl Fn(usize, u16) -> bool,
) -> Result<BulkOutcome, BulkError> {
    validate(cfg)?;
    let plan = TransferPlan::try_new(data.len(), cfg.params)?;
    let frags = plan.segment(data);
    let total = plan.total_frags() as u16;

    let mut pending: Vec<u16> = (0..total).collect();
    let all_released = vec![true; total as usize];
    let mut reasm = Reassembler::new(plan);
    let mut out = BulkOutcome::start();

    let mut sender_done = false;
    while out.rounds < cfg.max_rounds && !sender_done && !pending.is_empty() {
        let round = out.rounds;
        out.rounds += 1;
        let burst: Vec<u16> = pending.iter().take(cfg.window).copied().collect();

        // ---- forward burst: one full packet exchange per fragment ----
        for &seq in &burst {
            let seed = cfg
                .base
                .seed
                .wrapping_add(0x9E37_79B9 * (1 + round as u64))
                .wrapping_add(7919 * seq as u64);
            let now_s = out.airtime_s;
            send_fragment(
                cfg,
                &frags[seq as usize],
                seed,
                now_s,
                lose(round, seq),
                &mut reasm,
                &mut out,
            );
        }

        // ---- block ACK on the reverse link ----
        let ack = build_ack(&reasm, cfg.window, total);
        let (decoded, ack_air) = block_ack_exchange(
            cfg,
            &ack,
            cfg.base.seed ^ 0xB10C ^ ((round as u64) << 17),
            out.airtime_s,
        );
        out.airtime_s += ack_air;
        match decoded {
            Some(ack) => {
                if ack.done {
                    sender_done = true;
                }
                apply_ack(&mut pending, &ack, total, &all_released);
            }
            None => out.acks_lost += 1,
        }
    }

    out.delivered = reasm.assemble();
    if let Some(d) = &out.delivered {
        out.goodput_bps = d.len() as f64 * 8.0 / out.airtime_s;
        out.reason = BulkReason::Completed;
    }
    Ok(out)
}

/// Graceful-degradation ladder: maps the measured per-round erasure rate
/// (EWMA, with a lost block ACK counting as a fully erased round) to a
/// degradation level that shrinks the send window and releases more
/// per-generation RS parity. Two consecutive clean observations step one
/// level back down — the ladder recovers when the channel clears.
#[derive(Debug, Clone, Default)]
pub struct DegradationLadder {
    level: usize,
    ewma: f64,
    clear_streak: usize,
}

/// Highest degradation level (smallest window, all parity eager).
pub const MAX_DEGRADATION_LEVEL: usize = 3;

/// EWMA erasure rate above which the ladder climbs a level. Above half
/// the window erased, *sustained*: one bad boundary round (a blackout
/// edge, a burst landing in a window) must not shrink the window.
const RAISE_THRESHOLD: f64 = 0.5;
/// EWMA erasure rate below which a round counts toward recovery.
const CLEAR_THRESHOLD: f64 = 0.15;

impl DegradationLadder {
    /// A fresh ladder at level 0 (full window, no eager parity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Current degradation level, `0..=MAX_DEGRADATION_LEVEL`.
    pub fn level(&self) -> usize {
        self.level
    }

    /// The smoothed per-round erasure rate driving the ladder.
    pub fn erasure_ewma(&self) -> f64 {
        self.ewma
    }

    /// Feeds one round's measurement: the fraction of the burst that was
    /// erased, and whether the block ACK was decodable. A lost ACK is
    /// indistinguishable from total loss and is treated as such.
    pub fn observe_round(&mut self, erasure_rate: f64, ack_ok: bool) {
        let rate = if ack_ok { erasure_rate } else { 1.0 };
        self.ewma = 0.5 * self.ewma + 0.5 * rate;
        if self.ewma > RAISE_THRESHOLD {
            self.level = (self.level + 1).min(MAX_DEGRADATION_LEVEL);
            self.clear_streak = 0;
        } else if self.ewma < CLEAR_THRESHOLD {
            self.clear_streak += 1;
            if self.clear_streak >= 2 && self.level > 0 {
                self.level -= 1;
                self.clear_streak = 0;
            }
        } else {
            self.clear_streak = 0;
        }
    }

    /// The send window at the current level: halved per level, floor 2
    /// (never above the configured base).
    pub fn window(&self, base: usize) -> usize {
        (base >> self.level).clamp(2.min(base.max(1)), base.max(1))
    }

    /// Parity fragments per generation released *eagerly* at the current
    /// level: none when clean (parity only on receiver demand), half at
    /// level 1, all of them at level 2+.
    pub fn eager_parity(&self, parity: usize) -> usize {
        match self.level {
            0 => 0,
            1 => parity.div_ceil(2),
            _ => parity,
        }
    }
}

/// Runs a bulk transfer of `data` with the adaptive engine: degradation
/// ladder, estimator-paced backoff, and suspend/resume across blackouts.
/// See the module docs for the protocol; [`BulkOutcome::reason`] reports
/// how the run ended.
pub fn run_adaptive_transfer(cfg: &BulkConfig, data: &[u8]) -> Result<BulkOutcome, BulkError> {
    validate(cfg)?;
    let plan = TransferPlan::try_new(data.len(), cfg.params)?;
    let frags = plan.segment(data);
    let total = plan.total_frags() as u16;

    // Pending starts as the data fragments only: parity is released by
    // the ladder (eagerly, under degradation) or by explicit receiver
    // demand through the ACK need bitmap.
    let mut pending: Vec<u16> = (0..plan.generations())
        .flat_map(|g| {
            let s = plan.gen_start(g);
            (s..s + plan.gen_data_count(g)).map(|q| q as u16)
        })
        .collect();
    let mut released: Vec<bool> = vec![false; plan.total_frags()];
    for &s in &pending {
        released[s as usize] = true;
    }
    let mut sent: Vec<u32> = vec![0; plan.total_frags()];

    let mut reasm = Reassembler::new(plan);
    let mut ladder = DegradationLadder::new();
    let mut est = RttEstimator::new(cfg.base.seed ^ 0xADA7, MIN_RTO_S, MAX_RTO_S);
    let mut out = BulkOutcome::start();
    let mut now_s = 0.0f64;
    let mut sender_done = false;
    let mut dead_rounds = 0usize;
    let mut blackout_abort = false;
    // Unique per-exchange counter: fragment and ACK seeds never repeat
    // across rounds, probes, or ladder reshuffles.
    let mut exchange = 0u64;

    while !sender_done && !pending.is_empty() {
        if out.rounds >= cfg.max_rounds {
            break;
        }
        out.rounds += 1;

        // ---- parity release: ladder (eager) + receiver demand ----
        // Eager: under degradation, incomplete generations get parity up
        // front. Demand-driven: a fragment that has been sent twice and
        // is still pending keeps dying on this channel — answer with the
        // generation's full parity (seed/placement diversity) instead of
        // more identical copies.
        let eager = ladder.eager_parity(cfg.params.parity);
        let mut release = vec![0usize; plan.generations()];
        for &s in pending.iter() {
            if let Some((g, _)) = plan.locate(s as usize) {
                let want = if sent[s as usize] >= 2 {
                    cfg.params.parity
                } else {
                    eager
                };
                release[g] = release[g].max(want);
            }
        }
        for (g, &count) in release.iter().enumerate() {
            let pstart = plan.gen_start(g) + plan.gen_data_count(g);
            for seq in pstart..pstart + count.min(cfg.params.parity) {
                if !released[seq] {
                    released[seq] = true;
                    let s = seq as u16;
                    if let Err(pos) = pending.binary_search(&s) {
                        pending.insert(pos, s);
                    }
                }
            }
        }

        // ---- forward burst at the ladder's window ----
        // After a fully dead round, the next round is a 2-fragment
        // canary: confirming the outage costs 2 packets, not a window.
        let win = if dead_rounds > 0 {
            2
        } else {
            ladder.window(cfg.window)
        };
        let burst: Vec<u16> = pending.iter().take(win).copied().collect();
        let round_start_s = now_s;
        let mut heard_count = 0usize;
        for &seq in &burst {
            exchange += 1;
            let seed = cfg
                .base
                .seed
                .wrapping_add(0x9E37_79B9u64.wrapping_mul(exchange))
                .wrapping_add(7919 * seq as u64);
            let (heard, air) = send_fragment(
                cfg,
                &frags[seq as usize],
                seed,
                now_s,
                false,
                &mut reasm,
                &mut out,
            );
            now_s += air;
            sent[seq as usize] += 1;
            if heard {
                heard_count += 1;
            }
        }

        // ---- block ACK, with one re-solicitation on loss ----
        // A lost ACK wastes the whole round (the window gets resent to a
        // receiver that already has it); one retry costs two orders of
        // magnitude less airtime than that.
        let ack = build_ack(&reasm, cfg.window, total);
        let mut decoded = None;
        for _ in 0..2 {
            exchange += 1;
            let (d, ack_air) =
                block_ack_exchange(cfg, &ack, cfg.base.seed ^ 0xB10C ^ (exchange << 17), now_s);
            out.airtime_s += ack_air;
            now_s += ack_air;
            if d.is_some() {
                decoded = d;
                break;
            }
            out.acks_lost += 1;
        }
        let ack_ok = decoded.is_some();
        match decoded {
            Some(a) => {
                est.observe_rtt(now_s - round_start_s);
                if a.done {
                    sender_done = true;
                }
                apply_ack(&mut pending, &a, total, &released);
            }
            None => est.observe_loss(),
        }
        // ---- dead-link detection → suspend/resume ----
        // A fully dead round (nothing heard, no ACK) is an *outage*, not
        // congestion: it feeds the suspension logic, never the ladder —
        // otherwise a blackout would crush the window and the transfer
        // would crawl long after the link came back.
        if heard_count == 0 && !ack_ok {
            dead_rounds += 1;
        } else {
            dead_rounds = 0;
            let erasure_rate = 1.0 - heard_count as f64 / burst.len().max(1) as f64;
            ladder.observe_round(erasure_rate, ack_ok);
        }
        if dead_rounds >= SUSPEND_AFTER_DEAD_ROUNDS && !sender_done {
            out.suspensions += 1;
            let mut resumed = false;
            while out.probes < PROBE_BUDGET {
                // park: no airtime, just a backed-off, jittered wait
                let wait = est.next_wait_s();
                now_s += wait;
                out.suspended_s += wait;
                out.probes += 1;

                // probe: one fragment plus one block-ACK exchange
                let probe_start_s = now_s;
                let seq = pending[0];
                exchange += 1;
                let seed = cfg
                    .base
                    .seed
                    .wrapping_add(0x9E37_79B9u64.wrapping_mul(exchange))
                    .wrapping_add(7919 * seq as u64);
                let (_, air) = send_fragment(
                    cfg,
                    &frags[seq as usize],
                    seed,
                    now_s,
                    false,
                    &mut reasm,
                    &mut out,
                );
                now_s += air;
                sent[seq as usize] += 1;
                exchange += 1;
                let ack = build_ack(&reasm, cfg.window, total);
                let (probe_ack, probe_air) =
                    block_ack_exchange(cfg, &ack, cfg.base.seed ^ 0xB10C ^ (exchange << 17), now_s);
                out.airtime_s += probe_air;
                now_s += probe_air;
                match probe_ack {
                    Some(a) => {
                        est.observe_rtt(now_s - probe_start_s);
                        if a.done {
                            sender_done = true;
                        }
                        apply_ack(&mut pending, &a, total, &released);
                        resumed = true;
                        break;
                    }
                    None => {
                        out.acks_lost += 1;
                        est.observe_loss();
                    }
                }
            }
            if !resumed {
                blackout_abort = true;
                break;
            }
            dead_rounds = 0;
        }
    }

    out.delivered = reasm.assemble();
    out.reason = if out.delivered.is_some() {
        out.goodput_bps = data.len() as f64 * 8.0 / out.airtime_s;
        BulkReason::Completed
    } else if blackout_abort {
        BulkReason::Blackout
    } else {
        BulkReason::RoundBudget
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_channel::environments::{Environment, Site};
    use aqua_channel::geometry::Pos;

    fn demo_payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 197 + 31) as u8).collect()
    }

    fn bridge_cfg(params: TransferParams) -> BulkConfig {
        BulkConfig {
            base: TrialConfig::standard(
                Environment::preset(Site::Bridge),
                Pos::new(0.0, 0.0, 1.0),
                Pos::new(5.0, 0.0, 1.0),
                4242,
            ),
            params,
            window: 6,
            max_rounds: 20,
            faults: None,
        }
    }

    #[test]
    fn block_ack_tone_frame_roundtrip() {
        for (done, base, pattern) in [
            (false, 0u16, 0b101010u32),
            (true, 137, 0),
            (false, 999, 0b111111),
        ] {
            let ack = BlockAck {
                done,
                base,
                need: (0..6).map(|i| (pattern >> i) & 1 == 1).collect(),
            };
            let tones = ack.to_tones();
            assert_eq!(tones.len(), BlockAck::frame_tones(6));
            assert!(tones.iter().all(|&t| t < 32));
            let back = BlockAck::from_tones(&tones, 6).expect("roundtrip");
            assert_eq!(back.done, done);
            assert_eq!(back.base, base);
            assert_eq!(back.need, ack.need);
        }
    }

    #[test]
    fn block_ack_rejects_corrupted_tones() {
        let ack = BlockAck {
            done: false,
            base: 42,
            need: vec![true, false, true, true, false, false],
        };
        let tones = ack.to_tones();
        for i in 0..tones.len() {
            let mut bad = tones.clone();
            bad[i] ^= 0b00100; // flip one bit of one tone
            assert!(
                BlockAck::from_tones(&bad, 6).is_none(),
                "corrupted tone {i} accepted"
            );
        }
        assert!(BlockAck::from_tones(&tones[..tones.len() - 1], 6).is_none());
    }

    #[test]
    fn block_ack_crc_catches_xor_compensating_corruptions() {
        // Flip the same bit in two different body tones: the per-frame
        // XOR checksum cancels, so only the CRC-16 stands between a
        // two-tone corruption and a forged ACK. Exhaustive over all tone
        // pairs and all 31 flip patterns — deterministic, so a pass here
        // is a permanent property of these frame constants.
        let ack = BlockAck {
            done: false,
            base: 913,
            need: vec![true, false, false, true, true, false],
        };
        let tones = ack.to_tones();
        let body = tones.len() - 1;
        let mut forged = 0usize;
        for i in 0..body {
            for j in i + 1..body {
                for flip in 1..(1usize << ACK_TONE_BITS) {
                    let mut bad = tones.clone();
                    bad[i] ^= flip;
                    bad[j] ^= flip;
                    if let Some(parsed) = BlockAck::from_tones(&bad, 6) {
                        assert_eq!(parsed, ack, "differing parse accepted");
                        forged += 1;
                    }
                }
            }
        }
        assert_eq!(
            forged, 0,
            "{forged} compensating corruptions forged past the CRC"
        );
    }

    #[test]
    fn degenerate_configs_are_typed_errors_not_panics() {
        let mut cfg = bridge_cfg(TransferParams::default_rs());
        cfg.window = 0;
        assert_eq!(
            run_bulk_transfer(&cfg, &demo_payload(64)).unwrap_err(),
            BulkError::ZeroWindow
        );
        cfg.window = 6;
        cfg.max_rounds = 0;
        assert_eq!(
            run_adaptive_transfer(&cfg, &demo_payload(64)).unwrap_err(),
            BulkError::ZeroRounds
        );
        cfg.max_rounds = 20;
        assert_eq!(
            run_bulk_transfer(&cfg, &[]).unwrap_err(),
            BulkError::Plan(PlanError::EmptyTransfer)
        );
        assert_eq!(
            format!("{}", BulkError::Plan(PlanError::EmptyTransfer)),
            "transfer plan: empty transfer"
        );
    }

    #[test]
    fn ladder_degrades_and_recovers() {
        let mut l = DegradationLadder::new();
        assert_eq!(l.level(), 0);
        assert_eq!(l.window(12), 12);
        assert_eq!(l.eager_parity(4), 0);
        // one bad round is a transient — the ladder must not flinch
        l.observe_round(0.9, true);
        assert_eq!(l.level(), 0, "single bad round must not shrink the window");
        // sustained loss climbs it
        l.observe_round(1.0, false);
        assert!(l.level() >= 1, "level {} after sustained loss", l.level());
        l.observe_round(1.0, false);
        let peak = l.level();
        assert!(peak >= 2);
        assert!(l.window(12) < 12);
        assert_eq!(l.eager_parity(4), 4);
        // sustained clean rounds walk it back down to 0
        for _ in 0..30 {
            l.observe_round(0.0, true);
        }
        assert_eq!(l.level(), 0, "ladder must recover on a clean channel");
        assert_eq!(l.window(12), 12);
    }

    #[test]
    fn ladder_window_never_collapses_below_two() {
        let mut l = DegradationLadder::new();
        for _ in 0..10 {
            l.observe_round(1.0, false);
        }
        assert_eq!(l.level(), MAX_DEGRADATION_LEVEL);
        assert_eq!(l.window(12), 2);
        assert_eq!(l.window(2), 2);
        assert_eq!(l.window(1), 1);
    }

    #[test]
    fn clean_link_transfers_in_one_round_per_window() {
        // 120 bytes / 10 per frag = 12 data frags; RS(8+2) adds 4 parity
        let cfg = bridge_cfg(TransferParams {
            frag_bytes: 10,
            gen_data: 8,
            parity: 2,
        });
        let payload = demo_payload(120);
        let out = run_bulk_transfer(&cfg, &payload).expect("valid config");
        assert_eq!(out.delivered.as_deref(), Some(&payload[..]), "bit-exact");
        assert_eq!(out.reason, BulkReason::Completed);
        assert_eq!(out.erasures, 0, "clean link");
        assert_eq!(out.duplicates, 0);
        assert!(out.goodput_bps > 0.0);
        // 16 fragments through a window of 6 = 3 rounds minimum
        assert_eq!(out.rounds, 3);
        assert_eq!(out.packets_sent, 16);
    }

    #[test]
    fn adaptive_engine_skips_parity_on_a_clean_link() {
        // Level 0 sends no eager parity: a clean link moves only the 12
        // data fragments (vs 16 for the static engine) and still
        // completes — parity is pure overhead the ladder avoids paying.
        let cfg = bridge_cfg(TransferParams {
            frag_bytes: 10,
            gen_data: 8,
            parity: 2,
        });
        let payload = demo_payload(120);
        let out = run_adaptive_transfer(&cfg, &payload).expect("valid config");
        assert_eq!(out.delivered.as_deref(), Some(&payload[..]), "bit-exact");
        assert_eq!(out.reason, BulkReason::Completed);
        assert_eq!(out.packets_sent, 12, "data only, no eager parity");
        assert_eq!(out.suspensions, 0);
        assert_eq!(out.probes, 0);
        assert_eq!(out.suspended_s, 0.0);
    }

    #[test]
    fn outer_code_absorbs_persistent_erasures_where_no_fec_fails() {
        // A persistent erasure pattern: every 5th fragment vanishes on
        // EVERY transmission (a fragment whose band placement sits in a
        // stable fade). Per generation that is at most 2 losses — within
        // the RS(10, 8) budget — so the outer code delivers regardless;
        // the ARQ-only baseline keeps chasing the same two fragments and
        // never completes.
        let with_fec = bridge_cfg(TransferParams {
            frag_bytes: 10,
            gen_data: 8,
            parity: 2,
        });
        let mut no_fec = BulkConfig {
            params: with_fec.params.without_fec(),
            ..with_fec.clone()
        };
        no_fec.max_rounds = 6;
        let payload = demo_payload(120);
        let lose = |_round: usize, seq: u16| seq % 5 == 3;

        let rs = run_bulk_transfer_with_faults(&with_fec, &payload, lose).expect("valid config");
        assert_eq!(rs.delivered.as_deref(), Some(&payload[..]), "bit-exact");
        assert_eq!(rs.reason, BulkReason::Completed);
        assert!(rs.erasures >= 3, "forced losses surfaced as erasures");
        // 16 fragments through a window of 6 need 3 rounds even lossless:
        // the parity fragments, not extra rounds, absorb the losses
        assert_eq!(rs.rounds, 3, "no extra rounds over the lossless minimum");

        let plain = run_bulk_transfer_with_faults(&no_fec, &payload, lose).expect("valid config");
        assert_eq!(plain.delivered, None, "ARQ alone cannot finish");
        assert_eq!(
            plain.reason,
            BulkReason::RoundBudget,
            "failure mode is explicit"
        );
        assert!(
            plain.packets_sent > plain_data_frags(&no_fec, &payload),
            "kept retransmitting the lost fragments"
        );
    }

    fn plain_data_frags(cfg: &BulkConfig, payload: &[u8]) -> usize {
        payload.len().div_ceil(cfg.params.frag_bytes)
    }
}
