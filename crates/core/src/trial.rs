//! End-to-end packet trials: the post-preamble feedback protocol run over
//! the channel simulator on an absolute sample clock (Fig. 5's sequence).
//!
//! One [`run_trial`] call is one packet exchange:
//!
//! 1. Alice renders `preamble + receiver-ID` through the forward link.
//! 2. Bob detects the preamble (two-stage detector), checks the ID,
//!    estimates per-bin SNR and runs frequency-band selection.
//! 3. Bob's two-tone feedback symbol travels the *backward* link (its own
//!    device pair direction and noise).
//! 4. Alice decodes the feedback and renders the data section at the fixed
//!    symbol-clock offset; Bob locates the training symbol near the
//!    position implied by his preamble sync and decodes.
//!
//! Fixed-bandwidth baselines skip steps 2–4's adaptation and transmit on a
//! configured band after the same gap.

use aqua_channel::device::Device;
use aqua_channel::environments::Environment;
use aqua_channel::link::{Link, LinkConfig, SAMPLE_RATE};
use aqua_channel::mobility::Trajectory;
use aqua_coding::bits::bit_error_rate;
use aqua_coding::conv::{encode as conv_encode, Rate};
use aqua_phy::bandselect::{best_single_bin, select_band, Band, BandSelectConfig};
use aqua_phy::chanest::{estimate, ChannelEstimate};
use aqua_phy::feedback::{decode_feedback_whitened, decode_tone, encode_feedback, noise_bin_power};
use aqua_phy::frame::{build_header, locate_training, FrameConfig};
use aqua_phy::ofdm::{demodulate_data, modulate_data, DecodeOptions};
use aqua_phy::preamble::{detect_streaming, DetectorConfig, Preamble};

/// Rate-adaptation scheme under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// The paper's system: per-packet frequency band adaptation with
    /// post-preamble feedback.
    Adaptive,
    /// Fixed-bandwidth baseline on the given band (e.g. the full 1–4 kHz
    /// band = `Band::new(0, 59)`).
    Fixed(Band),
    /// Adaptation that reuses a band selected earlier (the cross-packet
    /// adaptation ablation): feedback is skipped, the provided band is
    /// used, but it was chosen from a *previous* channel observation.
    Stale(Band),
}

/// Configuration of one packet trial.
#[derive(Debug, Clone)]
pub struct TrialConfig {
    /// Environment preset.
    pub env: Environment,
    /// Transmitting device (Alice).
    pub alice_device: Device,
    /// Receiving device (Bob).
    pub bob_device: Device,
    /// Alice's trajectory.
    pub alice_traj: Trajectory,
    /// Bob's trajectory.
    pub bob_traj: Trajectory,
    /// Frame layout (numerology, gap, payload size).
    pub frame: FrameConfig,
    /// Adaptation scheme.
    pub scheme: Scheme,
    /// Payload bits (length must equal `frame.payload_bits`).
    pub payload: Vec<u8>,
    /// Bob's device ID (0..60).
    pub bob_id: u8,
    /// Decoder options.
    pub decode: DecodeOptions,
    /// Differential coding across OFDM symbols (TX side; the Fig. 14c
    /// ablation disables it and decodes coherently). Keep
    /// `decode.differential` consistent with this.
    pub differential: bool,
    /// Band-selection tuning.
    pub band_cfg: BandSelectConfig,
    /// Detector tuning.
    pub detector: DetectorConfig,
    /// Noise/realization seed.
    pub seed: u64,
    /// Fault schedule applied to both link directions (see
    /// [`aqua_channel::fault`]). `None` keeps the exact zero-fault render
    /// path — bit-identical to a config without a schedule.
    pub faults: Option<aqua_channel::fault::FaultSchedule>,
    /// Absolute session time at which this exchange starts: the offset
    /// mapping the trial's local clock onto the fault schedule's
    /// timeline. Transfer engines advance it per packet; standalone
    /// trials leave it 0.
    pub start_s: f64,
}

impl TrialConfig {
    /// A standard S9-pair trial at the given positions in an environment.
    pub fn standard(
        env: Environment,
        alice: aqua_channel::geometry::Pos,
        bob: aqua_channel::geometry::Pos,
        seed: u64,
    ) -> Self {
        Self {
            env,
            alice_device: Device::default_rig(seed.wrapping_mul(3) | 1),
            bob_device: Device::default_rig(seed.wrapping_mul(7) | 2),
            alice_traj: Trajectory::fixed(alice),
            bob_traj: Trajectory::fixed(bob),
            frame: FrameConfig::default(),
            scheme: Scheme::Adaptive,
            payload: (0..16).map(|i| ((seed >> (i % 60)) & 1) as u8).collect(),
            bob_id: 7,
            decode: DecodeOptions::default(),
            differential: true,
            band_cfg: BandSelectConfig::default(),
            detector: DetectorConfig::default(),
            seed,
            faults: None,
            start_s: 0.0,
        }
    }
}

/// Everything measured during one packet exchange.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Preamble detected at Bob.
    pub preamble_detected: bool,
    /// Detected receiver ID matched.
    pub id_ok: bool,
    /// Bob's channel estimate (if the preamble was detected).
    pub channel: Option<ChannelEstimate>,
    /// Band Bob selected (adaptive) or the configured band (fixed).
    pub band: Option<Band>,
    /// Feedback decoded correctly at Alice (adaptive only; fixed schemes
    /// report `true`).
    pub feedback_ok: bool,
    /// Decoded payload bits (None when the exchange failed earlier).
    pub bits: Option<Vec<u8>>,
    /// Packet decoded without any bit error (the paper's PER criterion).
    pub packet_ok: bool,
    /// Alice actually transmitted the data section (detection, band
    /// selection and — for the adaptive scheme — the feedback decode all
    /// succeeded). When false, `coded_ber` is a 0.5 placeholder over bits
    /// that never existed; series summaries average coded BER over
    /// data-phase trials only (see `aqua-eval`'s `SeriesStats`).
    pub data_phase: bool,
    /// BER over the coded (pre-Viterbi) bits.
    pub coded_ber: f64,
    /// Coded bitrate implied by the used band (paper's metric).
    pub coded_bitrate_bps: f64,
}

impl TrialResult {
    fn failed() -> Self {
        Self {
            preamble_detected: false,
            id_ok: false,
            channel: None,
            band: None,
            feedback_ok: false,
            bits: None,
            packet_ok: false,
            data_phase: false,
            coded_ber: 0.5,
            coded_bitrate_bps: 0.0,
        }
    }
}

/// Silence prepended to transmissions so detection sees a noise-only lead.
const LEAD_SAMPLES: usize = 2400;

/// Fixed seed for the pre-dive noise-floor calibration recording.
const CALIBRATION_SEED: u64 = 0xCA11_B007;

/// Alice's pre-dive ambient calibration: per-bin noise floor measured
/// from an 8-symbol recording of the site's ambient noise through the
/// receiver front end (the same measurement carrier sense uses).
///
/// One calibration serves the whole dive, so it is a pure function of the
/// site's noise profile (fixed seed, not the per-packet noise stream) and
/// is cached per thread keyed on the profile — every trial of an
/// environment sees the identical floor no matter which worker computes
/// it first, preserving the engine's parallel ≡ serial contract.
fn calibrated_noise_floor(
    params: &aqua_phy::params::OfdmParams,
    env: &Environment,
) -> std::rc::Rc<Vec<f64>> {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::rc::Rc;
    thread_local! {
        static CACHE: RefCell<HashMap<Vec<u64>, Rc<Vec<f64>>>> = RefCell::new(HashMap::new());
    }
    // Exact-bit profile fingerprint (+ the numerology's bin layout —
    // `noise_bin_power` reports the `num_bins` bins from `first_bin`, so
    // both are part of what the floor measures).
    let mut key: Vec<u64> = vec![
        env.noise.rms.to_bits(),
        params.n_fft as u64,
        params.first_bin as u64,
        params.num_bins as u64,
        params.fs.to_bits(),
    ];
    for &(f, db) in &env.noise.anchors {
        key.push(f.to_bits());
        key.push(db.to_bits());
    }
    CACHE.with(|cache| {
        cache
            .borrow_mut()
            .entry(key)
            .or_insert_with(|| {
                let mut cal = aqua_channel::noise::NoiseGenerator::new(
                    env.noise.clone(),
                    SAMPLE_RATE,
                    CALIBRATION_SEED,
                );
                let ambient = front_end(&cal.generate(8 * params.n_fft));
                Rc::new(noise_bin_power(params, &ambient))
            })
            .clone()
    })
}

/// Receiver front end: the paper's 128-order FIR bandpass around the
/// 1–4 kHz communication band. Ambient noise is concentrated below 1 kHz
/// (Fig. 4), so this buys ~12 dB of detection SNR.
///
/// The filter is fixed, so each worker thread designs it once and keeps a
/// [`aqua_dsp::fir::PlannedConvolver`] whose padded spectra persist
/// across the four-plus applications per trial and across trials —
/// bit-identical to designing and applying it fresh (the old per-call
/// path). Public because the evaluation harness (`aqua-eval`) must run
/// captures through the *same* front end the trial engine uses.
pub fn front_end(rx: &[f64]) -> Vec<f64> {
    use aqua_dsp::fir::{design_bandpass, PlannedConvolver};
    use aqua_dsp::window::Window;
    thread_local! {
        static BANDPASS: PlannedConvolver = PlannedConvolver::new(design_bandpass(
            129,
            850.0,
            4150.0,
            SAMPLE_RATE,
            Window::Hamming,
        ));
    }
    BANDPASS.with(|bpf| bpf.filter_same(rx))
}

/// Runs one packet exchange. See module docs for the sequence.
pub fn run_trial(cfg: &TrialConfig) -> TrialResult {
    let params = cfg.frame.params;
    let preamble = Preamble::new(params);
    let fs = SAMPLE_RATE;

    let mut forward = Link::new(LinkConfig {
        fs,
        env: cfg.env.clone(),
        tx_device: cfg.alice_device,
        rx_device: cfg.bob_device,
        tx_traj: cfg.alice_traj.clone(),
        rx_traj: cfg.bob_traj.clone(),
        noise: true,
        impulses: false,
        seed: cfg.seed ^ 0xF0,
    });
    let mut backward = Link::new(LinkConfig {
        fs,
        env: cfg.env.clone(),
        tx_device: cfg.bob_device,
        rx_device: cfg.alice_device,
        tx_traj: cfg.bob_traj.clone(),
        rx_traj: cfg.alice_traj.clone(),
        noise: true,
        impulses: false,
        seed: cfg.seed ^ 0x0B,
    });

    // Fault schedule evaluated on the session clock: local trial time
    // plus the exchange's absolute start (see `TrialConfig::start_s`).
    let faults = cfg.faults.as_ref().map(|f| (f, cfg.start_s));

    // ---- 1. header: preamble + receiver ID ----
    let mut header_tx = vec![0.0; LEAD_SAMPLES];
    header_tx.extend(build_header(&cfg.frame, &preamble, cfg.bob_id));
    let header_rx = front_end(&forward.transmit_with_faults(&header_tx, 0.0, faults));

    // ---- 2. Bob: detect, check ID, estimate, select ----
    // The detector is the receiver's *live* streaming path (overlap-save
    // coarse stage + prefix-sum fine stage), so experiment-scale runs
    // exercise exactly what a phone runs; the equivalence suite pins its
    // decisions to the batch oracle.
    let Some(detection) = detect_streaming(&header_rx, &preamble, &cfg.detector) else {
        return TrialResult::failed();
    };
    let preamble_offset = detection.offset;
    // receiver ID symbol follows the preamble
    let id_start = preamble_offset + preamble.len();
    let id_ok = header_rx
        .get(id_start..)
        .filter(|w| w.len() >= params.symbol_len())
        .and_then(|w| {
            let end = (params.symbol_len() + params.cp).min(w.len());
            decode_tone(&params, &w[..end], 0.3)
        })
        .map(|(bin, _)| bin == cfg.bob_id as usize)
        .unwrap_or(false);

    let est = estimate(&params, &preamble, &header_rx[preamble_offset..]);

    // time at which Bob finishes hearing the header (absolute seconds)
    let header_end_s = (preamble_offset + preamble.len() + params.symbol_len()) as f64 / fs;

    // ---- 3/4. band decision and (for adaptive) the feedback exchange ----
    // `bob_band` is what Bob selected and will demodulate with; `alice_band`
    // is what Alice decoded from the feedback and will modulate with. A
    // feedback decode error makes them diverge — and costs the packet, since
    // Bob has no way of knowing what Alice actually used.
    let (bob_band, alice_band, feedback_ok) = match cfg.scheme {
        Scheme::Fixed(band) | Scheme::Stale(band) => (band, band, true),
        Scheme::Adaptive => {
            let selected =
                select_band(&est.snr_db, &cfg.band_cfg).or_else(|| best_single_bin(&est.snr_db));
            let Some(selected) = selected else {
                return TrialResult {
                    preamble_detected: true,
                    id_ok,
                    channel: Some(est),
                    ..TrialResult::failed()
                };
            };
            // Bob transmits the feedback symbol ~2 ms after the header ends
            // (the paper's measured processing time for estimation +
            // adaptation is 1-2 ms).
            let fb_tx = encode_feedback(&params, selected);
            // Alice calibrated her ambient noise floor before the dive —
            // one recording per site, shared by every packet (see
            // `calibrated_noise_floor`); the feedback detector whitens
            // by it.
            let noise_psd = calibrated_noise_floor(&params, &cfg.env);
            let fb_rx =
                front_end(&backward.transmit_with_faults(&fb_tx, header_end_s + 0.002, faults));
            match decode_feedback_whitened(&params, &fb_rx, 0.3, Some(noise_psd.as_slice())) {
                Some(decoded) => (selected, decoded.band, decoded.band == selected),
                None => {
                    // feedback lost: Alice never sends data
                    return TrialResult {
                        preamble_detected: true,
                        id_ok,
                        channel: Some(est),
                        band: Some(selected),
                        feedback_ok: false,
                        bits: None,
                        packet_ok: false,
                        data_phase: false,
                        coded_ber: 0.5,
                        coded_bitrate_bps: 0.0,
                    };
                }
            }
        }
    };

    // ---- 5. data section on Alice's symbol clock (her decoded band) ----
    let coded_payload = conv_encode(&cfg.payload, Rate::TwoThirds);
    let data_tx = if cfg.differential {
        modulate_data(&params, alice_band, &cfg.payload)
    } else {
        aqua_phy::ofdm::modulate_coded(&params, alice_band, &coded_payload, false)
    };
    // Alice's clock: data begins data_start_offset after her preamble start
    // (LEAD_SAMPLES into her transmit buffer).
    let data_start_s = (LEAD_SAMPLES + cfg.frame.data_start_offset()) as f64 / fs;
    let data_rx = front_end(&forward.transmit_with_faults(&data_tx, data_start_s, faults));

    // ---- 6. Bob locates the training symbol and decodes ----
    // Bob expects the data at the same propagation delay as the preamble:
    // within data_rx (rendered relative to data_start_s) that is
    // preamble_offset - LEAD_SAMPLES, up to mobility drift.
    let expected = preamble_offset.saturating_sub(LEAD_SAMPLES);
    let Some(train_at) = locate_training(&params, &data_rx, expected, 2 * params.cp, 0.2) else {
        return TrialResult {
            preamble_detected: true,
            id_ok,
            channel: Some(est),
            band: Some(bob_band),
            feedback_ok,
            bits: None,
            packet_ok: false,
            data_phase: true,
            coded_ber: 0.5,
            coded_bitrate_bps: params.coded_bitrate_bps(bob_band.len()),
        };
    };
    let needed = aqua_phy::ofdm::data_section_len(&params, bob_band, cfg.payload.len());
    if data_rx.len() < train_at + needed {
        return TrialResult {
            preamble_detected: true,
            id_ok,
            channel: Some(est),
            band: Some(bob_band),
            feedback_ok,
            bits: None,
            packet_ok: false,
            data_phase: true,
            coded_ber: 0.5,
            coded_bitrate_bps: params.coded_bitrate_bps(bob_band.len()),
        };
    }
    // the front end already filtered; skip the demodulator's own bandpass
    let opts = DecodeOptions {
        bandpass: false,
        differential: cfg.differential && cfg.decode.differential,
        ..cfg.decode
    };
    let decoded = demodulate_data(
        &params,
        bob_band,
        &data_rx[train_at..],
        cfg.payload.len(),
        &opts,
    );

    let coded_ber = bit_error_rate(&coded_payload, &decoded.coded_hard);
    let packet_ok = decoded.bits == cfg.payload;
    TrialResult {
        preamble_detected: true,
        id_ok,
        channel: Some(est),
        band: Some(bob_band),
        feedback_ok,
        bits: Some(decoded.bits),
        packet_ok,
        data_phase: true,
        coded_ber,
        coded_bitrate_bps: params.coded_bitrate_bps(bob_band.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_channel::environments::Site;
    use aqua_channel::geometry::Pos;

    fn bridge_trial(dist: f64, seed: u64) -> TrialConfig {
        TrialConfig::standard(
            Environment::preset(Site::Bridge),
            Pos::new(0.0, 0.0, 1.0),
            Pos::new(dist, 0.0, 1.0),
            seed,
        )
    }

    #[test]
    fn adaptive_exchange_succeeds_at_5m() {
        let r = run_trial(&bridge_trial(5.0, 42));
        assert!(r.preamble_detected, "preamble");
        assert!(r.id_ok, "ID");
        assert!(r.feedback_ok, "feedback");
        assert!(r.packet_ok, "payload decode; coded BER {}", r.coded_ber);
        assert!(
            r.coded_bitrate_bps > 100.0,
            "bitrate {}",
            r.coded_bitrate_bps
        );
    }

    #[test]
    fn adaptive_exchange_succeeds_at_20m() {
        let r = run_trial(&bridge_trial(20.0, 7));
        assert!(r.preamble_detected);
        assert!(r.packet_ok, "coded BER {} band {:?}", r.coded_ber, r.band);
    }

    #[test]
    fn band_shrinks_with_distance() {
        let near = run_trial(&bridge_trial(5.0, 1)).band.unwrap();
        let far = run_trial(&bridge_trial(25.0, 1)).band.unwrap();
        assert!(
            far.len() <= near.len(),
            "near {} bins, far {} bins",
            near.len(),
            far.len()
        );
    }

    #[test]
    fn fixed_full_band_struggles_in_lake() {
        // The Fig. 9d effect: fixed 1-4 kHz ignores notches; adaptive avoids
        // them. At 10 m in the notchy lake the fixed scheme should show
        // clearly more coded-bit errors than the adaptive one.
        let mut adaptive_errs = 0.0;
        let mut fixed_errs = 0.0;
        for seed in 0..3u64 {
            let mut cfg = TrialConfig::standard(
                Environment::preset(Site::Lake),
                Pos::new(0.0, 0.0, 1.0),
                Pos::new(10.0, 0.0, 1.0),
                100 + seed,
            );
            adaptive_errs += run_trial(&cfg).coded_ber;
            cfg.scheme = Scheme::Fixed(Band::new(0, 59));
            fixed_errs += run_trial(&cfg).coded_ber;
        }
        assert!(
            adaptive_errs <= fixed_errs,
            "adaptive {adaptive_errs} vs fixed {fixed_errs}"
        );
    }

    #[test]
    fn wrong_id_is_flagged() {
        let mut cfg = bridge_trial(5.0, 3);
        cfg.bob_id = 31;
        let r = run_trial(&cfg);
        assert!(r.preamble_detected);
        assert!(r.id_ok, "correct ID decodes");
        // now mismatch: Bob listens for ID 5 but Alice addressed 31 —
        // modelled by checking a different expectation
        let mut cfg2 = bridge_trial(5.0, 3);
        cfg2.bob_id = 31;
        let r2 = run_trial(&TrialConfig { bob_id: 31, ..cfg2 });
        assert!(r2.id_ok);
    }

    #[test]
    fn mobility_still_decodes_mostly() {
        let mut cfg = bridge_trial(5.0, 11);
        cfg.alice_traj = Trajectory::slow(Pos::new(0.0, 0.0, 1.0), 5);
        let r = run_trial(&cfg);
        assert!(r.preamble_detected, "preamble under motion");
        // under slow motion the packet usually survives; at minimum the
        // coded BER must stay far from coin-flip
        assert!(r.coded_ber < 0.25, "coded BER {}", r.coded_ber);
    }
}
