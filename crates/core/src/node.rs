//! Node-level API: an audio-backend abstraction and a messaging facade.
//!
//! [`AudioBackend`] is the integration point a real phone port (cpal /
//! AAudio) would implement; [`SimAudioBus`] implements it over the
//! channel simulator's shared [`Medium`]. [`Messenger`] packages the
//! trial-level protocol into "send hand signals from A to B" calls for the
//! examples and app-level tests.

use crate::trial::{run_trial, Scheme, TrialConfig, TrialResult};
use aqua_channel::device::Device;
use aqua_channel::environments::Environment;
use aqua_channel::geometry::Pos;
use aqua_channel::medium::{Medium, NodeId};
use aqua_channel::mobility::Trajectory;
use aqua_proto::messages::Message;
use aqua_proto::packet::MessagePacket;

/// Duplex audio I/O as a phone app sees it: a speaker to feed and a
/// microphone to drain, sharing one sample clock.
pub trait AudioBackend {
    /// Sample rate in Hz.
    fn sample_rate(&self) -> f64;
    /// Current position of the sample clock.
    fn now(&self) -> u64;
    /// Queues samples for playback at the current clock position and
    /// advances the clock past them.
    fn play(&mut self, samples: &[f64]);
    /// Records `n` samples starting at the current clock position and
    /// advances the clock past them.
    fn record(&mut self, n: usize) -> Vec<f64>;
    /// Advances the clock without playing or recording (silence).
    fn sleep(&mut self, n: usize);
}

/// [`AudioBackend`] over the simulated shared medium: what a phone in the
/// water "hears" and "says".
pub struct SimAudioBus<'m> {
    medium: &'m mut Medium,
    node: NodeId,
    clock: u64,
}

impl<'m> SimAudioBus<'m> {
    /// Wraps a node of the medium.
    pub fn new(medium: &'m mut Medium, node: NodeId) -> Self {
        Self {
            medium,
            node,
            clock: 0,
        }
    }
}

impl AudioBackend for SimAudioBus<'_> {
    fn sample_rate(&self) -> f64 {
        self.medium.sample_rate()
    }

    fn now(&self) -> u64 {
        self.clock
    }

    fn play(&mut self, samples: &[f64]) {
        self.medium.transmit(self.node, self.clock, samples);
        self.clock += samples.len() as u64;
    }

    fn record(&mut self, n: usize) -> Vec<f64> {
        let out = self.medium.capture(self.node, self.clock, n);
        self.clock += n as u64;
        out
    }

    fn sleep(&mut self, n: usize) {
        self.clock += n as u64;
    }
}

/// Outcome of a messaging attempt.
#[derive(Debug, Clone)]
pub struct SendOutcome {
    /// The raw trial measurements.
    pub trial: TrialResult,
    /// The messages the receiver decoded, resolved against the codebook.
    pub received: Vec<Message>,
}

/// App-level facade: sends hand-signal packets between two positioned
/// devices in an environment, running the full adaptive protocol.
pub struct Messenger {
    env: Environment,
    seed: u64,
}

impl Messenger {
    /// Creates a messenger for an environment.
    pub fn new(env: Environment, seed: u64) -> Self {
        Self { env, seed }
    }

    /// Sends a message packet from `alice` to `bob` (device positions).
    /// Each call is one packet exchange; the seed advances so repeated
    /// sends see fresh noise.
    pub fn send(&mut self, alice: Pos, bob: Pos, packet: MessagePacket) -> SendOutcome {
        self.send_with(alice, bob, packet, Scheme::Adaptive, None, None)
    }

    /// Full-control variant used by examples: optional scheme override and
    /// trajectories.
    pub fn send_with(
        &mut self,
        alice: Pos,
        bob: Pos,
        packet: MessagePacket,
        scheme: Scheme,
        alice_traj: Option<Trajectory>,
        bob_traj: Option<Trajectory>,
    ) -> SendOutcome {
        self.seed = self.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut cfg = TrialConfig::standard(self.env.clone(), alice, bob, self.seed);
        cfg.payload = packet.to_bits();
        cfg.scheme = scheme;
        if let Some(t) = alice_traj {
            cfg.alice_traj = t;
        }
        if let Some(t) = bob_traj {
            cfg.bob_traj = t;
        }
        let trial = run_trial(&cfg);
        let received = trial
            .bits
            .as_deref()
            .and_then(MessagePacket::from_bits)
            .map(|p| {
                let mut msgs = Vec::new();
                if let Some(m) = aqua_proto::messages::by_id(p.first) {
                    msgs.push(m);
                }
                if let Some(second) = p.second {
                    if let Some(m) = aqua_proto::messages::by_id(second) {
                        msgs.push(m);
                    }
                }
                msgs
            })
            .unwrap_or_default();
        SendOutcome { trial, received }
    }

    /// The devices used by trials (for display purposes).
    pub fn device_pair(&self) -> (Device, Device) {
        (
            Device::default_rig(self.seed.wrapping_mul(3) | 1),
            Device::default_rig(self.seed.wrapping_mul(7) | 2),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_channel::environments::Site;
    use aqua_dsp::chirp::tone;

    #[test]
    fn sim_audio_bus_carries_sound_between_nodes() {
        let mut medium = Medium::new(Environment::preset(Site::Bridge), 48000.0, 5);
        let a = medium.add_node(
            Device::default_rig(1),
            Trajectory::fixed(Pos::new(0.0, 0.0, 1.0)),
        );
        let b = medium.add_node(
            Device::default_rig(2),
            Trajectory::fixed(Pos::new(5.0, 0.0, 1.0)),
        );
        let sig = tone(2000.0, 4800, 48000.0);
        {
            let mut bus_a = SimAudioBus::new(&mut medium, a);
            bus_a.play(&sig);
        }
        let mut bus_b = SimAudioBus::new(&mut medium, b);
        let rx = bus_b.record(6000);
        let p_on = aqua_dsp::goertzel::goertzel_power(&rx[500..5500], 2000.0, 48000.0);
        let p_off = aqua_dsp::goertzel::goertzel_power(&rx[500..5500], 3200.0, 48000.0);
        assert!(p_on > 5.0 * p_off, "tone not heard: {p_on} vs {p_off}");
        assert_eq!(bus_b.now(), 6000);
    }

    #[test]
    fn messenger_delivers_two_hand_signals() {
        let mut m = Messenger::new(Environment::preset(Site::Bridge), 9);
        let packet = MessagePacket::pair(3, 77);
        let out = m.send(Pos::new(0.0, 0.0, 1.0), Pos::new(5.0, 0.0, 1.0), packet);
        assert!(out.trial.packet_ok, "delivery failed");
        assert_eq!(out.received.len(), 2);
        assert_eq!(out.received[0].id, 3);
        assert_eq!(out.received[1].id, 77);
    }

    #[test]
    fn messenger_seeds_advance_between_sends() {
        let mut m = Messenger::new(Environment::preset(Site::Bridge), 1);
        let p = MessagePacket::single(0);
        let a = m.send(Pos::new(0.0, 0.0, 1.0), Pos::new(5.0, 0.0, 1.0), p);
        let b = m.send(Pos::new(0.0, 0.0, 1.0), Pos::new(5.0, 0.0, 1.0), p);
        // both should deliver; the channel/noise realizations differ but we
        // can at least assert both ran the full pipeline
        assert!(a.trial.preamble_detected && b.trial.preamble_detected);
    }
}
