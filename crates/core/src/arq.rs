//! ACK-based retransmission (§2.3 "Encoding ID and ACKs").
//!
//! The paper encodes ACKs as a single tone on the 1 kHz bin — all transmit
//! power on one subcarrier, decodable without channel knowledge. This
//! module wraps packet trials in a stop-and-wait ARQ loop: transmit, wait
//! for the ACK tone, retransmit up to a retry budget otherwise.

use crate::trial::{run_trial, TrialConfig, TrialResult};
use aqua_channel::link::{Link, LinkConfig, SAMPLE_RATE};
use aqua_phy::feedback::{decode_tone, encode_ack};

/// Result of an ARQ-protected delivery.
#[derive(Debug, Clone)]
pub struct ArqOutcome {
    /// Number of attempts used (1 = first try succeeded).
    pub attempts: usize,
    /// Whether the payload was delivered (and the ACK heard).
    pub delivered: bool,
    /// Per-attempt trial results.
    pub trials: Vec<TrialResult>,
    /// Airtime spent across all attempts, in seconds (headers, gaps, data
    /// and ACK symbols).
    pub airtime_s: f64,
}

/// Runs stop-and-wait ARQ: up to `max_attempts` packet exchanges, each
/// followed by an ACK tone on the reverse link when Bob decodes the
/// payload. Returns after the first acknowledged delivery.
pub fn send_with_arq(base: &TrialConfig, max_attempts: usize) -> ArqOutcome {
    assert!(max_attempts >= 1);
    let params = base.frame.params;
    let mut trials = Vec::new();
    let mut airtime_s = 0.0;
    for attempt in 0..max_attempts {
        let mut cfg = base.clone();
        cfg.seed = base.seed.wrapping_add(attempt as u64 * 0x9E37_79B9);
        let trial = run_trial(&cfg);
        // airtime: header + gap + data (+ retry overhead)
        let band_len = trial.band.map(|b| b.len()).unwrap_or(1);
        let data_syms = aqua_phy::ofdm::data_symbols(
            &params,
            trial.band.unwrap_or(aqua_phy::bandselect::Band::new(0, 0)),
            cfg.payload.len(),
        );
        let _ = band_len;
        airtime_s +=
            (cfg.frame.data_start_offset() + data_syms * params.symbol_len()) as f64 / params.fs;

        let ok = trial.packet_ok;
        trials.push(trial);
        if ok {
            // Bob sends the ACK tone back; Alice detects it.
            let mut back = Link::new(LinkConfig {
                fs: SAMPLE_RATE,
                env: cfg.env.clone(),
                tx_device: cfg.bob_device,
                rx_device: cfg.alice_device,
                tx_traj: cfg.bob_traj.clone(),
                rx_traj: cfg.alice_traj.clone(),
                noise: true,
                impulses: false,
                seed: cfg.seed ^ 0xACC,
            });
            let ack_rx = back.transmit(&encode_ack(&params), 0.0);
            airtime_s += params.symbol_len() as f64 / params.fs;
            let heard = decode_tone(&params, &ack_rx, 0.25)
                .map(|(bin, _)| bin == 0)
                .unwrap_or(false);
            if heard {
                return ArqOutcome {
                    attempts: attempt + 1,
                    delivered: true,
                    trials,
                    airtime_s,
                };
            }
        }
    }
    ArqOutcome {
        attempts: max_attempts,
        delivered: false,
        trials,
        airtime_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_channel::environments::{Environment, Site};
    use aqua_channel::geometry::Pos;

    #[test]
    fn good_link_delivers_first_try() {
        let cfg = TrialConfig::standard(
            Environment::preset(Site::Bridge),
            Pos::new(0.0, 0.0, 1.0),
            Pos::new(5.0, 0.0, 1.0),
            64,
        );
        let out = send_with_arq(&cfg, 3);
        assert!(out.delivered);
        assert_eq!(out.attempts, 1);
        assert!(
            out.airtime_s > 0.2 && out.airtime_s < 2.0,
            "airtime {}",
            out.airtime_s
        );
    }

    #[test]
    fn retries_are_bounded() {
        // Hopeless link: 120 m on the noisy lake — must give up cleanly.
        let cfg = TrialConfig::standard(
            Environment::preset(Site::Lake).with_noise_gain_db(20.0),
            Pos::new(0.0, 0.0, 1.0),
            Pos::new(120.0, 0.0, 1.0),
            65,
        );
        let out = send_with_arq(&cfg, 2);
        assert!(!out.delivered);
        assert_eq!(out.attempts, 2);
        assert_eq!(out.trials.len(), 2);
    }

    #[test]
    fn retry_can_rescue_marginal_links() {
        // At 30 m in the lake single attempts fail regularly; ARQ with a
        // few retries should deliver more often than one-shot.
        let mut one_shot = 0;
        let mut with_arq = 0;
        let n = 4;
        for seed in 0..n {
            let cfg = TrialConfig::standard(
                Environment::preset(Site::Lake),
                Pos::new(0.0, 0.0, 1.0),
                Pos::new(30.0, 0.0, 1.0),
                900 + seed,
            );
            if run_trial(&cfg).packet_ok {
                one_shot += 1;
            }
            if send_with_arq(&cfg, 3).delivered {
                with_arq += 1;
            }
        }
        assert!(
            with_arq >= one_shot,
            "ARQ {with_arq}/{n} vs one-shot {one_shot}/{n}"
        );
    }
}
