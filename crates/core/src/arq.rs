//! ACK-based retransmission (§2.3 "Encoding ID and ACKs").
//!
//! The paper encodes ACKs as a single tone — all transmit power on one
//! subcarrier, decodable without channel knowledge. This module wraps
//! packet trials in a stop-and-wait ARQ loop with an **alternating-bit
//! sequence number**: every transmission carries a 1-bit sequence in front
//! of the payload, and the ACK tone names the sequence it acknowledges
//! (bin 0 ↔ seq 0, bin 1 ↔ seq 1). Without the sequence bit, a decoded
//! payload whose ACK tone is lost would be retransmitted and *delivered
//! twice* with no way for the receiver to notice; with it, the retry is
//! recognized as a duplicate, suppressed, and simply re-ACKed.
//!
//! Airtime accounting covers what the channel actually carries: header +
//! feedback gap on every attempt, the data section when Alice transmitted
//! one, the ACK symbol when it was heard — and the full
//! [`ACK_TIMEOUT_SYMBOLS`] listen window on attempts where no ACK arrived
//! (that wait is real airtime a deployment pays before retrying).
//!
//! Bulk transfers use the selective-repeat window in [`crate::bulk`]
//! instead; this stop-and-wait path remains the chat/SOS delivery
//! mechanism.

use crate::trial::{run_trial, TrialConfig, TrialResult};
use aqua_channel::link::{Link, LinkConfig, SAMPLE_RATE};
use aqua_phy::feedback::{decode_tone, encode_tone};
use aqua_phy::frame::FrameConfig;
use aqua_phy::params::OfdmParams;

/// OFDM symbols Alice listens for the ACK tone before declaring the
/// attempt failed and retransmitting (propagation + Bob's decode time).
pub const ACK_TIMEOUT_SYMBOLS: usize = 3;

/// Seconds Alice spends waiting for an ACK that never arrives.
pub fn ack_timeout_s(params: &OfdmParams) -> f64 {
    ACK_TIMEOUT_SYMBOLS as f64 * params.symbol_duration_s()
}

/// Retry backoff exponent cap: timeouts never exceed `2^BACKOFF_CAP`
/// times the base RTO (before the absolute ceiling).
pub const BACKOFF_CAP: u32 = 6;

/// RTT / loss estimator feeding an adaptive retransmission timeout:
/// RFC 6298-style smoothed RTT and variance, capped exponential backoff
/// on loss, and *decorrelated jitter* on the emitted waits so repeated
/// retries of many senders (or many probe attempts of one sender) do not
/// synchronize. Fully deterministic for a given seed and observation
/// sequence — the timeout stream is part of the reproducibility contract.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt_s: Option<f64>,
    rttvar_s: f64,
    backoff: u32,
    /// Previous emitted wait, the anchor of decorrelated jitter.
    prev_wait_s: f64,
    /// xorshift64 state for the jitter draws.
    rng: u64,
    min_rto_s: f64,
    max_rto_s: f64,
}

impl RttEstimator {
    /// A fresh estimator. `min_rto_s`/`max_rto_s` clamp every emitted
    /// timeout; `seed` drives the jitter stream.
    pub fn new(seed: u64, min_rto_s: f64, max_rto_s: f64) -> Self {
        Self {
            srtt_s: None,
            rttvar_s: 0.0,
            backoff: 0,
            prev_wait_s: min_rto_s,
            rng: seed | 1,
            min_rto_s,
            max_rto_s,
        }
    }

    /// Records a measured round-trip time (a delivery was acknowledged):
    /// RFC 6298 SRTT/RTTVAR update, and the loss backoff resets.
    pub fn observe_rtt(&mut self, rtt_s: f64) {
        match self.srtt_s {
            None => {
                self.srtt_s = Some(rtt_s);
                self.rttvar_s = rtt_s / 2.0;
            }
            Some(srtt) => {
                self.rttvar_s = 0.75 * self.rttvar_s + 0.25 * (srtt - rtt_s).abs();
                self.srtt_s = Some(0.875 * srtt + 0.125 * rtt_s);
            }
        }
        self.backoff = 0;
        self.prev_wait_s = self.base_rto_s();
    }

    /// Records a loss (no ACK inside the window): the backoff exponent
    /// grows, capped at [`BACKOFF_CAP`].
    pub fn observe_loss(&mut self) {
        self.backoff = (self.backoff + 1).min(BACKOFF_CAP);
    }

    /// Current backoff exponent.
    pub fn backoff(&self) -> u32 {
        self.backoff
    }

    /// The un-jittered retransmission timeout: `srtt + 4·rttvar` scaled
    /// by the backoff, clamped to the configured bounds.
    pub fn base_rto_s(&self) -> f64 {
        let rto = match self.srtt_s {
            Some(srtt) => srtt + 4.0 * self.rttvar_s,
            None => self.min_rto_s,
        };
        (rto * f64::from(1u32 << self.backoff)).clamp(self.min_rto_s, self.max_rto_s)
    }

    /// Draws the next wait: decorrelated jitter, `uniform(base, 3·prev)`
    /// clamped to `[base, max]`. Consecutive draws under sustained loss
    /// grow geometrically toward the cap without ever synchronizing.
    pub fn next_wait_s(&mut self) -> f64 {
        let base = self.base_rto_s();
        let hi = (self.prev_wait_s * 3.0).clamp(base, self.max_rto_s);
        // xorshift64 → uniform in [0, 1)
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let u = (self.rng >> 11) as f64 / (1u64 << 53) as f64;
        let wait = base + (hi - base) * u;
        self.prev_wait_s = wait;
        wait
    }
}

/// Airtime of one transmission attempt, excluding the ACK phase: header +
/// feedback gap, plus the data section when one was transmitted on a band
/// of `band_bins` subcarriers.
pub fn attempt_airtime_s(frame: &FrameConfig, band_bins: usize, data_phase: bool) -> f64 {
    let params = frame.params;
    let mut samples = frame.data_start_offset();
    if data_phase {
        let band = aqua_phy::bandselect::Band::new(0, band_bins.max(1) - 1);
        samples +=
            aqua_phy::ofdm::data_symbols(&params, band, frame.payload_bits) * params.symbol_len();
    }
    samples as f64 / params.fs
}

/// Result of an ARQ-protected delivery.
#[derive(Debug, Clone)]
pub struct ArqOutcome {
    /// Number of attempts used (1 = first try succeeded).
    pub attempts: usize,
    /// Whether the payload was delivered (and the ACK heard).
    pub delivered: bool,
    /// Times the receiver handed the payload to the application during this
    /// send (with duplicate suppression this is 0 or 1 — never 2, even when
    /// an ACK is lost and the packet is retransmitted).
    pub receiver_deliveries: usize,
    /// Retransmissions the receiver recognized as duplicates (sequence bit
    /// matched an already-delivered payload) and suppressed.
    pub duplicates: usize,
    /// Per-attempt trial results.
    pub trials: Vec<TrialResult>,
    /// Airtime spent across all attempts, in seconds: headers, gaps, data
    /// sections, heard ACK symbols, and the full ACK-listen timeout on
    /// every attempt that ended without an ACK.
    pub airtime_s: f64,
}

/// Stop-and-wait ARQ endpoint state: the sender's current sequence bit and
/// the receiver's next-expected bit. One session persists across
/// [`ArqSession::send`] calls so duplicate detection works *between*
/// messages too (the lost-ACK retry of message N must not shadow
/// message N+1).
#[derive(Debug, Clone, Default)]
pub struct ArqSession {
    tx_seq: u8,
    rx_expected: u8,
}

impl ArqSession {
    /// Fresh session: both ends start at sequence 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The sequence bit the next transmission will carry.
    pub fn tx_seq(&self) -> u8 {
        self.tx_seq
    }

    /// Runs stop-and-wait ARQ: up to `max_attempts` packet exchanges, each
    /// followed by an ACK tone on the reverse link when Bob decodes the
    /// payload. Returns after the first acknowledged delivery.
    pub fn send(&mut self, base: &TrialConfig, max_attempts: usize) -> ArqOutcome {
        self.send_with_ack_faults(base, max_attempts, |_| false)
    }

    /// [`Self::send`] with a fault hook: `ack_lost(attempt)` forces the ACK
    /// tone of that attempt to vanish in the channel — the deterministic
    /// lost-ACK scenario the duplicate-suppression tests pin down.
    pub fn send_with_ack_faults(
        &mut self,
        base: &TrialConfig,
        max_attempts: usize,
        ack_lost: impl Fn(usize) -> bool,
    ) -> ArqOutcome {
        assert!(max_attempts >= 1);
        let seq = self.tx_seq;
        // the sequence bit rides in front of the payload bits
        let mut cfg_template = base.clone();
        cfg_template.payload = {
            let mut p = Vec::with_capacity(base.payload.len() + 1);
            p.push(seq);
            p.extend_from_slice(&base.payload);
            p
        };
        cfg_template.frame.payload_bits = cfg_template.payload.len();

        let params = cfg_template.frame.params;
        let mut trials = Vec::new();
        let mut airtime_s = 0.0;
        let mut receiver_deliveries = 0usize;
        let mut duplicates = 0usize;
        for attempt in 0..max_attempts {
            let mut cfg = cfg_template.clone();
            cfg.seed = base.seed.wrapping_add(attempt as u64 * 0x9E37_79B9);
            let trial = run_trial(&cfg);
            airtime_s += attempt_airtime_s(
                &cfg.frame,
                trial.band.map(|b| b.len()).unwrap_or(1),
                trial.data_phase,
            );

            // Bob's side: decoded payloads are delivered once per sequence
            // bit; a repeat of the just-delivered bit is a duplicate
            // (retransmission after a lost ACK) and only re-ACKed.
            // Checked access: a decoded-but-empty bit vector must surface
            // as "no sequence bit" (an undeliverable frame), never panic.
            let decoded_seq = trial
                .bits
                .as_ref()
                .and_then(|b| b.first().copied())
                .filter(|_| trial.packet_ok);
            let ok = trial.packet_ok;
            trials.push(trial);
            if let Some(rx_seq) = decoded_seq {
                if rx_seq == self.rx_expected {
                    receiver_deliveries += 1;
                    self.rx_expected ^= 1;
                } else {
                    duplicates += 1;
                }
            }
            if ok && !ack_lost(attempt) {
                // Bob sends the ACK tone naming the received sequence bit;
                // Alice accepts only an ACK for the sequence she sent.
                let mut back = Link::new(LinkConfig {
                    fs: SAMPLE_RATE,
                    env: cfg.env.clone(),
                    tx_device: cfg.bob_device,
                    rx_device: cfg.alice_device,
                    tx_traj: cfg.bob_traj.clone(),
                    rx_traj: cfg.alice_traj.clone(),
                    noise: true,
                    impulses: false,
                    seed: cfg.seed ^ 0xACC,
                });
                let ack_rx = back.transmit(&encode_tone(&params, seq as usize), 0.0);
                let heard = decode_tone(&params, &ack_rx, 0.25)
                    .map(|(bin, _)| bin == seq as usize)
                    .unwrap_or(false);
                if heard {
                    airtime_s += params.symbol_duration_s();
                    self.tx_seq ^= 1;
                    return ArqOutcome {
                        attempts: attempt + 1,
                        delivered: true,
                        receiver_deliveries,
                        duplicates,
                        trials,
                        airtime_s,
                    };
                }
            }
            // no ACK arrived (packet lost, ACK lost, or ACK misheard):
            // Alice sits through the whole listen window before retrying —
            // but only when she actually transmitted data and expected one.
            if trials.last().is_some_and(|t| t.data_phase) {
                airtime_s += ack_timeout_s(&params);
            }
        }
        ArqOutcome {
            attempts: max_attempts,
            delivered: false,
            receiver_deliveries,
            duplicates,
            trials,
            airtime_s,
        }
    }
}

impl ArqSession {
    /// [`Self::send`] with adaptive retry pacing: the estimator's
    /// RTO replaces the fixed [`ack_timeout_s`] listen window on failed
    /// attempts, so retries back off (capped, jittered) under sustained
    /// loss instead of hammering a dead channel, and successful
    /// exchanges feed their measured round-trip back into it.
    pub fn send_adaptive(
        &mut self,
        base: &TrialConfig,
        max_attempts: usize,
        est: &mut RttEstimator,
    ) -> ArqOutcome {
        let fixed = self.send_with_ack_faults(base, max_attempts, |_| false);
        // Re-derive the airtime with adaptive waits: the fixed engine
        // charged `ack_timeout_s` per failed data-phase attempt; swap
        // each for an estimator draw and feed the observations through.
        let params = base.frame.params;
        let mut airtime_s = 0.0;
        for (i, t) in fixed.trials.iter().enumerate() {
            let mut frame = base.frame;
            frame.payload_bits = base.payload.len() + 1;
            let attempt =
                attempt_airtime_s(&frame, t.band.map(|b| b.len()).unwrap_or(1), t.data_phase);
            airtime_s += attempt;
            let delivered_here = fixed.delivered && i + 1 == fixed.attempts;
            if delivered_here {
                let rtt = attempt + params.symbol_duration_s();
                airtime_s += params.symbol_duration_s();
                est.observe_rtt(rtt);
            } else if t.data_phase {
                est.observe_loss();
                airtime_s += est.next_wait_s();
            }
        }
        ArqOutcome { airtime_s, ..fixed }
    }
}

/// One-shot stop-and-wait delivery on a fresh [`ArqSession`] (sequence 0).
/// Ongoing exchanges should hold a session so the alternating bit persists
/// across messages.
pub fn send_with_arq(base: &TrialConfig, max_attempts: usize) -> ArqOutcome {
    ArqSession::new().send(base, max_attempts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_channel::environments::{Environment, Site};
    use aqua_channel::geometry::Pos;

    #[test]
    fn good_link_delivers_first_try() {
        let cfg = TrialConfig::standard(
            Environment::preset(Site::Bridge),
            Pos::new(0.0, 0.0, 1.0),
            Pos::new(5.0, 0.0, 1.0),
            64,
        );
        let out = send_with_arq(&cfg, 3);
        assert!(out.delivered);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.receiver_deliveries, 1);
        assert_eq!(out.duplicates, 0);
        assert!(
            out.airtime_s > 0.2 && out.airtime_s < 2.0,
            "airtime {}",
            out.airtime_s
        );
        // exact accounting: one successful attempt = header + gap + data
        // symbols + the heard ACK symbol (no timeout)
        let t = &out.trials[0];
        let expected = attempt_airtime_s(
            &{
                let mut f = cfg.frame;
                f.payload_bits = cfg.payload.len() + 1;
                f
            },
            t.band.unwrap().len(),
            true,
        ) + cfg.frame.params.symbol_duration_s();
        assert!(
            (out.airtime_s - expected).abs() < 1e-12,
            "airtime {} != expected {expected}",
            out.airtime_s
        );
    }

    #[test]
    fn retries_are_bounded_and_failed_attempts_pay_the_ack_timeout() {
        // Hopeless link: 120 m on the noisy lake — must give up cleanly.
        let cfg = TrialConfig::standard(
            Environment::preset(Site::Lake).with_noise_gain_db(20.0),
            Pos::new(0.0, 0.0, 1.0),
            Pos::new(120.0, 0.0, 1.0),
            65,
        );
        let out = send_with_arq(&cfg, 2);
        assert!(!out.delivered);
        assert_eq!(out.attempts, 2);
        assert_eq!(out.trials.len(), 2);
        assert_eq!(out.receiver_deliveries, 0);
        // exact accounting: every attempt pays header+gap (+data and the
        // full ACK-listen timeout when the data phase was reached)
        let mut frame = cfg.frame;
        frame.payload_bits = cfg.payload.len() + 1;
        let expected: f64 = out
            .trials
            .iter()
            .map(|t| {
                attempt_airtime_s(&frame, t.band.map(|b| b.len()).unwrap_or(1), t.data_phase)
                    + if t.data_phase {
                        ack_timeout_s(&frame.params)
                    } else {
                        0.0
                    }
            })
            .sum();
        assert!(
            (out.airtime_s - expected).abs() < 1e-12,
            "airtime {} != expected {expected}",
            out.airtime_s
        );
    }

    #[test]
    fn lost_ack_retry_is_recognized_as_duplicate() {
        // Good link, but the first ACK tone is swallowed by the channel:
        // Bob decodes the payload twice, delivers it once, and flags the
        // retry as a duplicate. Without the alternating bit this scenario
        // double-delivered with no way to detect it.
        let cfg = TrialConfig::standard(
            Environment::preset(Site::Bridge),
            Pos::new(0.0, 0.0, 1.0),
            Pos::new(5.0, 0.0, 1.0),
            64,
        );
        let mut session = ArqSession::new();
        let out = session.send_with_ack_faults(&cfg, 3, |attempt| attempt == 0);
        assert!(out.delivered, "retry should get through");
        assert_eq!(out.attempts, 2);
        assert_eq!(
            out.receiver_deliveries, 1,
            "payload must reach the app exactly once"
        );
        assert_eq!(out.duplicates, 1, "the retry must be flagged as duplicate");
        // lost-ACK attempt paid the listen timeout, heard attempt the ACK
        assert!(out.airtime_s > 0.0);

        // the session moved on: the next message uses the flipped bit and
        // is delivered fresh, not shadowed by the previous exchange
        assert_eq!(session.tx_seq(), 1);
        let next = session.send(&cfg, 3);
        assert!(next.delivered);
        assert_eq!(next.receiver_deliveries, 1);
        assert_eq!(next.duplicates, 0);
    }

    #[test]
    fn rtt_estimator_tracks_and_backs_off() {
        let mut est = RttEstimator::new(42, 0.1, 16.0);
        // no samples yet: RTO sits at the floor
        assert!((est.base_rto_s() - 0.1).abs() < 1e-12);
        est.observe_rtt(1.0);
        // first sample: srtt = 1.0, rttvar = 0.5 ⇒ rto = 3.0
        assert!((est.base_rto_s() - 3.0).abs() < 1e-12);
        // losses double the RTO each time, capped
        est.observe_loss();
        assert!((est.base_rto_s() - 6.0).abs() < 1e-12);
        for _ in 0..20 {
            est.observe_loss();
        }
        assert_eq!(est.backoff(), BACKOFF_CAP);
        assert!((est.base_rto_s() - 16.0).abs() < 1e-12, "ceiling clamps");
        // a fresh RTT sample clears the backoff
        est.observe_rtt(1.0);
        assert_eq!(est.backoff(), 0);
        assert!(est.base_rto_s() < 4.0);
    }

    #[test]
    fn estimator_waits_are_jittered_deterministic_and_bounded() {
        let draw = |seed: u64| -> Vec<f64> {
            let mut est = RttEstimator::new(seed, 0.5, 16.0);
            est.observe_rtt(0.8);
            (0..8)
                .map(|_| {
                    est.observe_loss();
                    est.next_wait_s()
                })
                .collect()
        };
        let a = draw(7);
        let b = draw(7);
        assert_eq!(a, b, "same seed ⇒ identical wait stream");
        let c = draw(8);
        assert_ne!(a, c, "different seed ⇒ different jitter");
        for (i, &w) in a.iter().enumerate() {
            assert!(w >= 0.5 && w <= 16.0, "wait {i} out of bounds: {w}");
        }
        // sustained loss must grow the waits toward the cap overall
        assert!(
            a.last().unwrap() > a.first().unwrap(),
            "backoff must grow waits: {a:?}"
        );
    }

    #[test]
    fn adaptive_send_matches_fixed_on_clean_link_and_feeds_estimator() {
        let cfg = TrialConfig::standard(
            Environment::preset(Site::Bridge),
            Pos::new(0.0, 0.0, 1.0),
            Pos::new(5.0, 0.0, 1.0),
            64,
        );
        let mut est = RttEstimator::new(1, 0.2, 16.0);
        let out = ArqSession::new().send_adaptive(&cfg, 3, &mut est);
        assert!(out.delivered);
        assert_eq!(out.attempts, 1);
        // the delivery fed the estimator a real RTT sample
        assert!(est.base_rto_s() > 0.2, "rto grew from the RTT sample");
        assert_eq!(est.backoff(), 0);
        // clean first-try delivery pays no timeout, so the airtime matches
        // the fixed engine exactly
        let fixed = ArqSession::new().send(&cfg, 3);
        assert!((out.airtime_s - fixed.airtime_s).abs() < 1e-12);
    }

    #[test]
    fn adaptive_send_backs_off_on_dead_link() {
        // Hopeless link: every attempt fails, so each data-phase attempt
        // pays an estimator wait and the backoff climbs.
        let cfg = TrialConfig::standard(
            Environment::preset(Site::Lake).with_noise_gain_db(20.0),
            Pos::new(0.0, 0.0, 1.0),
            Pos::new(120.0, 0.0, 1.0),
            65,
        );
        let mut est = RttEstimator::new(3, 0.2, 16.0);
        let out = ArqSession::new().send_adaptive(&cfg, 3, &mut est);
        assert!(!out.delivered);
        let data_attempts = out.trials.iter().filter(|t| t.data_phase).count();
        if data_attempts > 0 {
            assert_eq!(est.backoff() as usize, data_attempts.min(6));
            assert!(out.airtime_s > 0.2 * data_attempts as f64);
        }
    }

    #[test]
    fn retry_can_rescue_marginal_links() {
        // At 30 m in the lake single attempts fail regularly; ARQ with a
        // few retries should deliver more often than one-shot.
        let mut one_shot = 0;
        let mut with_arq = 0;
        let n = 4;
        for seed in 0..n {
            let cfg = TrialConfig::standard(
                Environment::preset(Site::Lake),
                Pos::new(0.0, 0.0, 1.0),
                Pos::new(30.0, 0.0, 1.0),
                900 + seed,
            );
            if run_trial(&cfg).packet_ok {
                one_shot += 1;
            }
            if send_with_arq(&cfg, 3).delivered {
                with_arq += 1;
            }
        }
        assert!(
            with_arq >= one_shot,
            "ARQ {with_arq}/{n} vs one-shot {one_shot}/{n}"
        );
    }
}
