//! # aquapp
//!
//! The full-stack AquaApp system crate: wires the adaptive OFDM physical
//! layer (`aqua-phy`), carrier-sense MAC (`aqua-mac`) and messaging layer
//! (`aqua-proto`) over the underwater channel simulator (`aqua-channel`).
//!
//! - [`trial`]: one post-preamble-feedback packet exchange on an absolute
//!   sample clock — the unit every paper experiment is built from.
//! - [`node`]: the [`node::AudioBackend`] integration trait (what a cpal /
//!   AAudio port implements), its simulator implementation, and the
//!   [`node::Messenger`] app facade.
//! - [`receiver`]: the continuously-listening streaming receiver state
//!   machine (block-based audio in, protocol events out).
//! - [`arq`]: stop-and-wait retransmission over the single-tone ACK, with
//!   an alternating-bit sequence for duplicate suppression.
//! - [`bulk`]: selective-repeat bulk transfer (file/image) with the
//!   Reed–Solomon outer erasure code and tone-symbol block ACKs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arq;
pub mod bulk;
pub mod node;
pub mod receiver;
pub mod trial;

pub use arq::{send_with_arq, ArqOutcome, ArqSession};
pub use bulk::{run_bulk_transfer, run_bulk_transfer_with_faults, BulkConfig, BulkOutcome};
pub use node::{AudioBackend, Messenger, SendOutcome, SimAudioBus};
pub use receiver::{RxEvent, StreamingReceiver};
pub use trial::{run_trial, Scheme, TrialConfig, TrialResult};
