//! # aqua-bench
//!
//! Criterion benchmark targets for the AquaModem workspace. The library
//! itself is empty — all content lives in `benches/` (one bench per paper
//! figure plus hot-path microbenches). See DESIGN.md §5 for the experiment
//! index mapping figures to bench targets.
