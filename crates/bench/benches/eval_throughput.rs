//! Experiment-layer throughput: how fast the harness burns through packet
//! trials — the number that decides whether a paper-scale figure takes
//! minutes or hours. `trials_per_second` exercises the full exchange
//! (streaming detection, estimation, band selection, feedback, data
//! decode) over the channel renderer on the parallel engine; the printed
//! mean is for a 4-trial series, so trials/s = 4 / mean.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aqua_channel::environments::{Environment, Site};
use aqua_channel::geometry::Pos;
use aqua_channel::link::{Link, LinkConfig};
use aqua_eval::runner::{packet_series, packet_series_serial};
use aquapp::trial::TrialConfig;

fn cfg(seed: u64) -> TrialConfig {
    TrialConfig::standard(
        Environment::preset(Site::Bridge),
        Pos::new(0.0, 0.0, 1.0),
        Pos::new(5.0, 0.0, 1.0),
        1000 + seed,
    )
}

fn trials_per_second(c: &mut Criterion) {
    // engine path (worker count from AQUA_PAR_THREADS / cores)
    c.bench_function("trials_per_second", |b| {
        b.iter(|| black_box(packet_series(4, cfg).per))
    });
    // single-thread reference for the speedup ratio
    c.bench_function("trials_per_second_serial", |b| {
        b.iter(|| black_box(packet_series_serial(4, cfg).per))
    });
}

fn link_transmit_cached(c: &mut Criterion) {
    // Steady-state cost of one 0.25 s static render on a warm link: the
    // fused device ∗ multipath FIR and its padded spectra are cached, so
    // each call is one planned convolution plus the noise synthesis —
    // what every packet after the first pays per transmission.
    let mut link = Link::new(LinkConfig::s9_pair(
        Environment::preset(Site::Bridge),
        Pos::new(0.0, 0.0, 1.0),
        Pos::new(5.0, 0.0, 1.0),
        42,
    ));
    let tx: Vec<f64> = (0..12_000).map(|i| (i as f64 * 0.29).sin()).collect();
    link.transmit(&tx, 0.0); // warm the FIR memo and spectra
    c.bench_function("link_transmit_cached", |b| {
        b.iter(|| black_box(link.transmit(black_box(&tx), 0.0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = trials_per_second, link_transmit_cached
}
criterion_main!(benches);
