//! Channel-renderer hot paths: the moving-trajectory (fig14-class) render
//! and constant-rate resampling. Before PR 5 the moving render evaluated a
//! 32-tap Kaiser-sinc from scratch per output sample per path — a
//! *measured* 1040 ms for this 0.5 s fast-motion lake packet, the single
//! largest remaining per-trial cost. The polyphase fractional-delay engine
//! (DESIGN.md §10) turns the inner loop into table-blend dot products:
//! 28 ms on the 1-core container. `ci.sh` gates `render_moving_0.5s` at
//! ≤ 55 ms (~2× slack over the measured mean — far beyond ISSUE 5's ≥5×
//! floor, which would be 208 ms) and `resample_const_0.5s` at ≤ 3 ms.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aqua_channel::environments::{Environment, Site};
use aqua_channel::geometry::Pos;
use aqua_channel::link::{Link, LinkConfig};
use aqua_channel::mobility::Trajectory;

fn render_moving(c: &mut Criterion) {
    // A fig14-style moving link: lake multipath (~33 tracked paths), fast
    // swimmer dynamics, noise off so the timing isolates the render itself.
    let mut cfg = LinkConfig::s9_pair(
        Environment::preset(Site::Lake),
        Pos::new(0.0, 0.0, 1.0),
        Pos::new(5.0, 0.0, 1.0),
        42,
    );
    cfg.noise = false;
    cfg.tx_traj = Trajectory::fast(Pos::new(0.0, 0.0, 1.0), 44);
    let mut link = Link::new(cfg);
    let tx: Vec<f64> = (0..24_000).map(|i| (i as f64 * 0.29).sin()).collect();
    link.transmit(&tx, 0.0); // warm the device-FIR plan and kernel table
    c.bench_function("render_moving_0.5s", |b| {
        b.iter(|| black_box(link.transmit(black_box(&tx), 0.0)))
    });
}

fn resample(c: &mut Criterion) {
    // The Doppler-compensation resampler over a 0.5 s packet at a typical
    // estimated scale factor.
    let sig: Vec<f64> = (0..24_000).map(|i| (i as f64 * 0.13).sin()).collect();
    aqua_dsp::resample::resample_const(&sig, 1.0003); // warm the kernel table
    c.bench_function("resample_const_0.5s", |b| {
        b.iter(|| black_box(aqua_dsp::resample::resample_const(black_box(&sig), 1.0003)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = render_moving, resample
}
criterion_main!(benches);
