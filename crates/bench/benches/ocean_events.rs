//! Event-driven ocean simulator throughput: wall-clock for one quick-size
//! deployment run, the number `ci.sh` budgets so the 10 000-node, 24 h
//! `repro ocean full` stays tractable (~9 M events per topology scale
//! linearly from this). The iteration covers the whole pipeline —
//! topology generation, spatial-hash neighbor lists, the event core, PER
//! table and memoized sample-level overlap resolution — on one worker, so
//! events/s = events / mean with no parallel speedup baked in.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aqua_mac::ocean::{run_ocean, OceanConfig, TopologyKind};
use aqua_par::Pool;

fn ocean_events_per_second(c: &mut Criterion) {
    // The `repro ocean quick` grid row: 150 nodes, 30 simulated minutes,
    // ~3 k events and ~1 k transmissions per iteration.
    let cfg = OceanConfig::deployment(TopologyKind::Grid, 150, 1800.0, 42);
    let pool = Pool::new(1);
    run_ocean(&cfg, &pool); // warm the calibration + probe render memos
    c.bench_function("ocean_events_per_second", |b| {
        b.iter(|| black_box(run_ocean(black_box(&cfg), &pool).events))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ocean_events_per_second
}
criterion_main!(benches);
