//! Bulk-transfer pipeline cost: one windowed selective-repeat transfer of
//! a 480-byte payload over a clean Bridge link — 24 full packet exchanges
//! (16 data + 8 RS parity fragments) plus the tone-symbol block ACKs.
//! This is the unit the `repro transfer` experiment scales by range and
//! payload size, so a regression here multiplies straight into the
//! goodput figures. The RS codec itself is also pinned standalone:
//! striping 2 KB through RS(16, 12) is microseconds and must stay there.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aqua_channel::environments::{Environment, Site};
use aqua_channel::geometry::Pos;
use aqua_coding::rs::ReedSolomon;
use aqua_proto::transfer::TransferParams;
use aquapp::bulk::{run_bulk_transfer, BulkConfig};
use aquapp::trial::TrialConfig;

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 197 + 31) as u8).collect()
}

fn bulk_transfer_480b(c: &mut Criterion) {
    let cfg = BulkConfig {
        base: TrialConfig::standard(
            Environment::preset(Site::Bridge),
            Pos::new(0.0, 0.0, 1.0),
            Pos::new(5.0, 0.0, 1.0),
            4242,
        ),
        params: TransferParams::default_rs(),
        window: 12,
        max_rounds: 8,
        faults: None,
    };
    let data = payload(480);
    c.bench_function("bulk_transfer_480b", |b| {
        b.iter(|| {
            // `faults: None` is the zero-fault path: the fault-injection
            // seam must not move this off its existing budget
            let out = run_bulk_transfer(black_box(&cfg), black_box(&data)).expect("valid config");
            assert!(out.delivered.is_some());
            black_box(out.goodput_bps)
        })
    });
}

fn rs_stripe_2kb(c: &mut Criterion) {
    let rs = ReedSolomon::new(16, 12);
    let frags: Vec<Vec<u8>> = (0..12).map(|_| payload(30)).collect();
    c.bench_function("rs_stripe_2kb", |b| {
        b.iter(|| {
            // ~2 KB: 6 generations of 12 × 30-byte fragments round-trip
            for g in 0..6u8 {
                let parity = rs.encode_stripes(black_box(&frags));
                let mut slots: Vec<Option<Vec<u8>>> = frags.iter().cloned().map(Some).collect();
                slots.extend(parity.into_iter().map(Some));
                // erase a full parity budget's worth of fragments
                for e in 0..4 {
                    slots[(g as usize + 3 * e) % 16] = None;
                }
                let rows = rs.recover_stripes(&slots, 30).expect("within budget");
                black_box(rows);
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bulk_transfer_480b, rs_stripe_2kb
}
criterion_main!(benches);
