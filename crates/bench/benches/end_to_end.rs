//! Per-figure end-to-end benches: one packet exchange per configuration of
//! the paper's main experiments. `cargo bench` therefore regenerates a
//! miniature of each figure's workload; the full series come from
//! `cargo run -p aqua-eval --release --bin repro`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use aqua_channel::environments::{Environment, Site};
use aqua_channel::geometry::Pos;
use aqua_channel::link::{Link, LinkConfig};
use aqua_channel::mobility::Trajectory;
use aqua_mac::netsim::{simulate, MacConfig};
use aqua_phy::bandselect::Band;
use aqua_phy::fsk::{demodulate, modulate, FskParams};
use aquapp::trial::{run_trial, Scheme, TrialConfig};

fn fig9_environments(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_packet_exchange");
    group.sample_size(10);
    for site in [Site::Bridge, Site::Park, Site::Lake] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{site:?}")),
            &site,
            |b, &site| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let cfg = TrialConfig::standard(
                        Environment::preset(site),
                        Pos::new(0.0, 0.0, 1.0),
                        Pos::new(5.0, 0.0, 1.0),
                        seed,
                    );
                    black_box(run_trial(&cfg))
                })
            },
        );
    }
    group.finish();
}

fn fig12_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_range_lake");
    group.sample_size(10);
    for dist in [5.0_f64, 15.0, 30.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{dist}m")),
            &dist,
            |b, &dist| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let cfg = TrialConfig::standard(
                        Environment::preset(Site::Lake),
                        Pos::new(0.0, 0.0, 1.0),
                        Pos::new(dist, 0.0, 1.0),
                        seed,
                    );
                    black_box(run_trial(&cfg))
                })
            },
        );
    }
    group.finish();
}

fn fig14_mobility(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_mobility_lake_5m");
    group.sample_size(10);
    for (name, accel) in [("static", 0.0_f64), ("slow", 2.5), ("fast", 5.1)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &accel, |b, &accel| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut cfg = TrialConfig::standard(
                    Environment::preset(Site::Lake),
                    Pos::new(0.0, 0.0, 1.0),
                    Pos::new(5.0, 0.0, 1.0),
                    seed,
                );
                if accel > 0.0 {
                    cfg.alice_traj = Trajectory::Oscillating {
                        base: Pos::new(0.0, 0.0, 1.0),
                        azimuth: 0.0,
                        rms_accel: accel,
                        seed,
                    };
                }
                black_box(run_trial(&cfg))
            })
        });
    }
    group.finish();
}

fn fig12d_fsk(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12d_fsk_beacon");
    group.sample_size(10);
    for (name, params) in [("10bps", FskParams::bps10()), ("20bps", FskParams::bps20())] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &params, |b, params| {
            let bits = vec![1u8, 0, 1, 1, 0, 0, 1, 0, 1, 0];
            let tx = modulate(params, &bits);
            let mut link = Link::new(LinkConfig::s9_pair(
                Environment::preset(Site::Beach),
                Pos::new(0.0, 0.0, 1.0),
                Pos::new(100.0, 0.0, 1.0),
                9,
            ));
            let rx = link.transmit(&tx, 0.0);
            let delay = (100.0 / 1500.0 * params.fs) as usize;
            b.iter(|| black_box(demodulate(params, black_box(&rx), delay, bits.len())))
        });
    }
    group.finish();
}

fn fig19_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19_mac_sim");
    group.sample_size(10);
    for n_tx in [2usize, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(n_tx), &n_tx, |b, &n_tx| {
            let gains = vec![vec![1e-4; n_tx]; n_tx];
            let noise = vec![1e-6; n_tx];
            b.iter(|| {
                let cfg = MacConfig {
                    max_packets: 60,
                    ..MacConfig::default()
                };
                black_box(simulate(&cfg, &gains, &noise, 3))
            })
        });
    }
    group.finish();
}

fn fixed_vs_adaptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheme_comparison_lake_10m");
    group.sample_size(10);
    for (name, scheme) in [
        ("adaptive", Scheme::Adaptive),
        ("fixed_full_band", Scheme::Fixed(Band { start: 0, end: 59 })),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, scheme| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut cfg = TrialConfig::standard(
                    Environment::preset(Site::Lake),
                    Pos::new(0.0, 0.0, 1.0),
                    Pos::new(10.0, 0.0, 1.0),
                    seed,
                );
                cfg.scheme = *scheme;
                black_box(run_trial(&cfg))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = fig9_environments, fig12_range, fig14_mobility, fig12d_fsk, fig19_mac, fixed_vs_adaptive
}
criterion_main!(benches);
