//! Crash-recovery hot path: parse + replay a ~1 k-record custody
//! journal into live relay state. This is the work a rebooting node does
//! before it can resume forwarding, so `ci.sh` budgets it — reboot
//! storms in the chaos sweeps replay thousands of these logs, and a
//! regression here multiplies across every simulated power cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aqua_net::bundle::fragment_message;
use aqua_net::journal::parse_records;
use aqua_net::{recover, Bundle, BundleKey, Priority, Record};

fn bundle(src: u16, seq: u16) -> Bundle {
    fragment_message(src, 9, seq, Priority::Chat, true, 3600, 8, &[0x5A; 24], 24)
        .expect("valid geometry")
        .remove(0)
}

/// A realistic ~1024-record log: custody accepts interleaved with
/// releases, copy halvings, cures, seen inserts, destination fragments
/// and deliveries, in roughly the proportions the chaos runs produce.
fn demo_log() -> Vec<u8> {
    let mut records = Vec::new();
    for i in 0..128u16 {
        let b = bundle(i % 7, i);
        let key = b.key();
        records.push(Record::Accept {
            came_from: 2,
            copies: 8,
            expires_s: 3600.0 + f64::from(i),
            bundle: b.clone(),
        });
        records.push(Record::Copies { key, copies: 4 });
        records.push(Record::Seen { key });
        if i % 2 == 0 {
            records.push(Record::Release { key });
        }
        if i % 3 == 0 {
            records.push(Record::Cure {
                key: BundleKey {
                    src: i % 7,
                    seq: i.wrapping_add(500),
                    frag: 0,
                },
            });
        }
        if i % 4 == 0 {
            records.push(Record::FragIn { bundle: b });
            records.push(Record::Deliver {
                src: i % 7,
                seq: i.wrapping_add(900),
            });
        }
    }
    records.iter().flat_map(|r| r.encode()).collect()
}

fn journal_replay(c: &mut Criterion) {
    let log = demo_log();
    let n = parse_records(&log).len();
    assert!(n >= 512, "log must be replay-storm sized, got {n} records");
    c.bench_function("journal_replay_1k_records", |b| {
        b.iter(|| {
            let records = parse_records(black_box(&log));
            black_box(recover(&records, 60.0).entries.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = journal_replay
}
criterion_main!(benches);
