//! Hot-path microbenches against the paper's §3 runtime budget:
//! channel estimation / frequency adaptation / feedback decode ≈ 1–2 ms
//! each on a Galaxy S9, and per-symbol equalization + Viterbi < 20 ms
//! (one OFDM symbol duration).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aqua_coding::conv::{encode as conv_encode, Rate};
use aqua_coding::viterbi::decode_soft;
use aqua_phy::bandselect::Band;
use aqua_phy::bandselect::{select_band, BandSelectConfig};
use aqua_phy::chanest::estimate;
use aqua_phy::equalizer::{design_fd, DEFAULT_EQ_LEN};
use aqua_phy::feedback::{decode_feedback, decode_feedback_batch, encode_feedback};
use aqua_phy::params::OfdmParams;
use aqua_phy::preamble::{detect, DetectorConfig, Preamble, StreamingDetector};

fn fft_960(c: &mut Criterion) {
    let plan = aqua_dsp::fft::Fft::new(960);
    let buf: Vec<aqua_dsp::Complex> = (0..960)
        .map(|i| aqua_dsp::Complex::new((i as f64 * 0.37).sin(), 0.0))
        .collect();
    c.bench_function("fft_960_forward", |b| {
        b.iter(|| {
            let mut data = buf.clone();
            plan.forward(black_box(&mut data));
            black_box(data)
        })
    });
    // The real-input fast path at the 10 Hz-spacing symbol size: one
    // half-size complex FFT + untangling vs the full complex transform.
    let plan_real = aqua_dsp::fft::RealFft::new(4800);
    let signal: Vec<f64> = (0..4800).map(|i| (i as f64 * 0.211).sin()).collect();
    c.bench_function("real_fft_4800", |b| {
        b.iter(|| black_box(plan_real.forward_half(black_box(&signal))))
    });

    // The channel renderer's dominant cost: one 0.5 s transmission
    // convolved with a multipath+device FIR (both real → the real-FFT
    // convolution path; next_power_of_two lands on a 32768-point plan).
    let tx: Vec<f64> = (0..24_000).map(|i| (i as f64 * 0.13).sin()).collect();
    let fir: Vec<f64> = (0..2_048)
        .map(|i| ((i as f64 * 0.71).sin() / (i + 1) as f64))
        .collect();
    c.bench_function("fft_convolve_0.5s_render", |b| {
        b.iter(|| black_box(aqua_dsp::fir::fft_convolve(black_box(&tx), black_box(&fir))))
    });

    // Same convolution through the planned path: the filter spectrum is
    // cached and all scratch is reused, leaving one forward + one inverse
    // transform per call — the renderer/front-end steady state.
    let planned = aqua_dsp::fir::PlannedConvolver::new(fir.clone());
    let mut out = Vec::new();
    c.bench_function("planned_convolve_0.5s_render", |b| {
        b.iter(|| {
            planned.convolve_into(black_box(&tx), &mut out);
            black_box(out.len())
        })
    });
}

fn preamble_pipeline(c: &mut Criterion) {
    let params = OfdmParams::default();
    let preamble = Preamble::new(params);
    let mut rx = vec![0.0; 4000];
    rx.extend_from_slice(&preamble.samples);
    rx.extend(vec![0.0; 4000]);
    // modest noise so the detector does real work
    let mut s = 1u64;
    for v in rx.iter_mut() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        *v += ((s as f64 / u64::MAX as f64) - 0.5) * 0.02;
    }
    // the live path: a long-lived streaming detector (template spectrum
    // cached) scanning one 0.33 s buffer; `reset` keeps the plan between
    // iterations like a real receiver keeps it between buffers
    let mut streaming = StreamingDetector::new(preamble.clone(), DetectorConfig::default());
    c.bench_function("preamble_detect_0.33s_buffer", |b| {
        b.iter(|| {
            streaming.reset();
            let mut found = streaming.push(black_box(&rx));
            found.extend(streaming.flush());
            black_box(found)
        })
    });

    // same buffer chopped into 20 ms audio callbacks with the receiver's
    // one-symbol latency bound — the realtime duty-cycle number
    c.bench_function("preamble_scan_20ms_callbacks", |b| {
        b.iter(|| {
            streaming.reset();
            let mut found = Vec::new();
            for chunk in rx.chunks(960) {
                found.extend(streaming.push(black_box(chunk)));
                found.extend(streaming.poll(params.n_fft));
            }
            black_box(found)
        })
    });

    // the batch rescan kept as the reference oracle
    c.bench_function("preamble_detect_batch_reference", |b| {
        b.iter(|| {
            black_box(detect(
                black_box(&rx),
                &preamble,
                &DetectorConfig::default(),
            ))
        })
    });

    let aligned = &rx[4000..4000 + preamble.len()];
    c.bench_function("channel_estimation_8_symbols", |b| {
        b.iter(|| black_box(estimate(&params, &preamble, black_box(aligned))))
    });

    let est = estimate(&params, &preamble, aligned);
    c.bench_function("band_selection_60_bins", |b| {
        b.iter(|| {
            black_box(select_band(
                black_box(&est.snr_db),
                &BandSelectConfig::default(),
            ))
        })
    });
}

fn feedback_pipeline(c: &mut Criterion) {
    let params = OfdmParams::default();
    let sym = encode_feedback(&params, Band::new(5, 48));
    let mut rx = vec![0.0; 1920]; // max RTT at 30 m ≈ 40 ms window
    rx.extend_from_slice(&sym);
    rx.extend(vec![0.0; 500]);
    // the live path: sliding-Goertzel bank, O(num_bins) per sample
    c.bench_function("feedback_decode_rtt_window", |b| {
        b.iter(|| black_box(decode_feedback(&params, black_box(&rx), 0.3)))
    });
    // the FFT-per-window oracle the sliding path is tested against
    c.bench_function("feedback_decode_batch_reference", |b| {
        b.iter(|| black_box(decode_feedback_batch(&params, black_box(&rx), 0.3, None)))
    });
}

fn decoder_pipeline(c: &mut Criterion) {
    let params = OfdmParams::default();
    let train = aqua_phy::ofdm::training_symbol(&params);
    let core = &train[params.cp..];
    c.bench_function("equalizer_design_480_taps", |b| {
        b.iter(|| {
            black_box(design_fd(
                &params,
                black_box(core),
                black_box(core),
                100.0,
                DEFAULT_EQ_LEN,
            ))
        })
    });

    let data = conv_encode(&vec![1u8; 16], Rate::TwoThirds);
    let soft: Vec<f64> = data
        .iter()
        .map(|&b| if b == 0 { 1.0 } else { -1.0 })
        .collect();
    c.bench_function("viterbi_24_coded_bits", |b| {
        b.iter(|| black_box(decode_soft(black_box(&soft), Rate::TwoThirds)))
    });

    // Packet-scale decode (the fig14 64-bit payload at rate 2/3) through
    // the flat trellis: static branch table, swapped metric buffers,
    // one-word-per-step packed survivors.
    let payload: Vec<u8> = (0..64).map(|i| (i % 2) as u8).collect();
    let coded = conv_encode(&payload, Rate::TwoThirds);
    let soft_packet: Vec<f64> = coded
        .iter()
        .map(|&b| if b == 0 { 1.0 } else { -1.0 })
        .collect();
    c.bench_function("viterbi_decode_packet", |b| {
        b.iter(|| black_box(decode_soft(black_box(&soft_packet), Rate::TwoThirds)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = fft_960, preamble_pipeline, feedback_pipeline, decoder_pipeline
}
criterion_main!(benches);
