//! Ablation benches for the design choices DESIGN.md §6 calls out:
//! per-packet feedback vs stale bands, sliding correlation vs plain
//! cross-correlation under impulsive noise, equalizer designs, interleaver
//! on/off, and hard vs soft Viterbi.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use aqua_channel::environments::{Environment, Site};
use aqua_channel::geometry::Pos;
use aqua_channel::mobility::Trajectory;
use aqua_coding::conv::{encode as conv_encode, Rate};
use aqua_coding::viterbi::{decode_hard, decode_soft};
use aqua_phy::bandselect::Band;
use aqua_phy::ofdm::EqDesign;
use aquapp::trial::{run_trial, Scheme, TrialConfig};

/// Post-preamble feedback vs a band selected from an earlier (stale)
/// channel observation, under fast motion — the protocol's core bet.
fn ablation_feedback(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_feedback_under_motion");
    group.sample_size(10);
    // derive a "stale" band once, from a static observation
    let stale_band = {
        let cfg = TrialConfig::standard(
            Environment::preset(Site::Lake),
            Pos::new(0.0, 0.0, 1.0),
            Pos::new(5.0, 0.0, 1.0),
            999,
        );
        run_trial(&cfg).band.unwrap_or(Band { start: 0, end: 59 })
    };
    for (name, scheme) in [
        ("per_packet_feedback", Scheme::Adaptive),
        ("stale_band", Scheme::Stale(stale_band)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, scheme| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut cfg = TrialConfig::standard(
                    Environment::preset(Site::Lake),
                    Pos::new(0.0, 0.0, 1.0),
                    Pos::new(5.0, 0.0, 1.0),
                    seed,
                );
                cfg.alice_traj = Trajectory::fast(Pos::new(0.0, 0.0, 1.0), seed);
                cfg.scheme = *scheme;
                black_box(run_trial(&cfg))
            })
        });
    }
    group.finish();
}

/// Equalizer designs: off vs textbook TD vs FD-realized MMSE.
fn ablation_equalizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_equalizer_museum_5m");
    group.sample_size(10);
    for (name, eq) in [
        ("off", EqDesign::Off),
        ("time_domain", EqDesign::TimeDomain),
        ("freq_domain", EqDesign::FreqDomain),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &eq, |b, eq| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut cfg = TrialConfig::standard(
                    Environment::preset(Site::Museum),
                    Pos::new(0.0, 0.0, 2.0),
                    Pos::new(5.0, 0.0, 2.0),
                    seed,
                );
                cfg.decode.eq = *eq;
                black_box(run_trial(&cfg))
            })
        });
    }
    group.finish();
}

/// Hard vs soft Viterbi on the same noisy soft stream.
fn ablation_viterbi(c: &mut Criterion) {
    let data: Vec<u8> = (0..64).map(|i| ((i * 7) % 2) as u8).collect();
    let coded = conv_encode(&data, Rate::Half);
    // bipolar with Gaussian-ish perturbation
    let mut s = 5u64;
    let soft: Vec<f64> = coded
        .iter()
        .map(|&b| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let n = (s as f64 / u64::MAX as f64) - 0.5;
            (if b == 0 { 1.0 } else { -1.0 }) + 1.2 * n
        })
        .collect();
    let hard: Vec<u8> = soft.iter().map(|&v| if v >= 0.0 { 0 } else { 1 }).collect();
    let mut group = c.benchmark_group("ablation_viterbi");
    group.bench_function("soft_decisions", |b| {
        b.iter(|| black_box(decode_soft(black_box(&soft), Rate::Half)))
    });
    group.bench_function("hard_decisions", |b| {
        b.iter(|| black_box(decode_hard(black_box(&hard), Rate::Half)))
    });
    group.finish();
}

/// Interleaver on/off: measures the decode path with the paper's
/// interleaver against a contiguous filler (the interleaver itself is
/// nearly free; the bench documents that).
fn ablation_interleaver(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_interleaver");
    let bits: Vec<u8> = (0..240).map(|i| ((i * 3) % 2) as u8).collect();
    group.bench_function("interleave_deinterleave_60bins", |b| {
        b.iter(|| {
            let symbols = aqua_coding::interleave::interleave(black_box(&bits), 60);
            let dense: Vec<Vec<u8>> = symbols
                .iter()
                .map(|s| s.iter().map(|x| x.unwrap_or(0)).collect())
                .collect();
            black_box(aqua_coding::interleave::deinterleave(
                &dense,
                60,
                bits.len(),
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = ablation_feedback, ablation_equalizer, ablation_viterbi, ablation_interleaver
}
criterion_main!(benches);
