//! Fuzz the packet parsers on arbitrary bitstreams: no input may panic,
//! and every *accepted* parse must re-serialize to exactly the bits it
//! consumed — the property that makes "reject corrupted fields" (instead of
//! silently coercing them) the only legal parser behavior.

use aqua_proto::packet::{MessagePacket, SosBeacon, SOS_SYNC};
use aqua_proto::transfer::Fragment;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// MessagePacket: arbitrary 0/1 streams of any length never panic, and
    /// an accepted 16-bit parse re-serializes bit-exact.
    #[test]
    fn message_packet_fuzz(bits in proptest::collection::vec(0u8..2, 0..40)) {
        if let Some(pkt) = MessagePacket::from_bits(&bits) {
            prop_assert_eq!(bits.len(), 16);
            prop_assert_eq!(pkt.to_bits(), bits);
        }
    }

    /// SosBeacon: arbitrary 0/1 streams never panic, and an accepted parse
    /// re-serializes to exactly the consumed prefix.
    #[test]
    fn sos_beacon_fuzz(bits in proptest::collection::vec(0u8..2, 0..64)) {
        if let Some((beacon, used)) = SosBeacon::from_bits(&bits) {
            prop_assert!(used == 15 || used == 23);
            prop_assert!(used <= bits.len());
            prop_assert_eq!(beacon.to_bits(), &bits[..used]);
        }
    }

    /// Seeding the stream with a valid sync pattern exercises the deep
    /// parse paths (flag/ID/signal) instead of bouncing off the sync check.
    #[test]
    fn sos_beacon_fuzz_after_sync(tail in proptest::collection::vec(0u8..2, 0..32)) {
        let mut bits = SOS_SYNC.to_vec();
        bits.extend(&tail);
        if let Some((beacon, used)) = SosBeacon::from_bits(&bits) {
            prop_assert_eq!(beacon.to_bits(), &bits[..used]);
        }
    }

    /// Transfer fragments: arbitrary 0/1 streams never panic; the CRC makes
    /// random acceptance astronomically unlikely, but any accepted parse
    /// must still roundtrip.
    #[test]
    fn fragment_fuzz(bits in proptest::collection::vec(0u8..2, 0..128)) {
        if let Some(frag) = Fragment::from_bits(&bits) {
            prop_assert_eq!(frag.to_bits(), bits);
        }
    }

    /// Valid fragments survive the parser for every payload size, and any
    /// single-bit corruption is caught by the CRC.
    #[test]
    fn fragment_roundtrip_and_single_flip(
        seq in 0u16..2048,
        payload in proptest::collection::vec(0u8..=255u8, 1..48),
        flip in 0usize..1000,
    ) {
        let frag = Fragment { seq, payload };
        let bits = frag.to_bits();
        prop_assert_eq!(Fragment::from_bits(&bits), Some(frag));
        let at = flip % bits.len();
        let mut bad = bits.clone();
        bad[at] ^= 1;
        prop_assert_eq!(Fragment::from_bits(&bad), None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The typed parsers agree exactly with their `Option` wrappers on
    /// every input: `from_bits` is `try_from_bits(..).ok()`, nothing more.
    #[test]
    fn typed_and_option_parsers_agree(bits in proptest::collection::vec(0u8..2, 0..128)) {
        prop_assert_eq!(
            MessagePacket::from_bits(&bits),
            MessagePacket::try_from_bits(&bits).ok()
        );
        prop_assert_eq!(
            SosBeacon::from_bits(&bits),
            SosBeacon::try_from_bits(&bits).ok()
        );
        prop_assert_eq!(
            Fragment::from_bits(&bits),
            Fragment::try_from_bits(&bits).ok()
        );
    }

    /// Typed rejections carry honest reasons: a wrong-length message
    /// packet reports the length, a broken sync pattern reports BadSync.
    #[test]
    fn typed_errors_name_the_failure(len in 0usize..40) {
        use aqua_proto::ParseError;
        if len != 16 {
            prop_assert_eq!(
                MessagePacket::try_from_bits(&vec![0; len]),
                Err(ParseError::BadLength { expect: 16, got: len })
            );
        }
        if len >= 15 {
            // All-zero bits cannot start with the sync pattern.
            prop_assert_eq!(
                SosBeacon::try_from_bits(&vec![0; len]),
                Err(ParseError::BadSync)
            );
        }
    }
}
