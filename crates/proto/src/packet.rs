//! App-layer packet formats.
//!
//! A data packet carries 16 bits = two message IDs ("users can choose to
//! send two hand signals in a single packet", §3). The SOS beacon carries a
//! 6-bit user ID over the FSK modem, optionally followed by an 8-bit hand
//! signal ("transmitted in around a second", §3).

use crate::error::ParseError;
use crate::messages::MESSAGE_COUNT;
use aqua_coding::bits::{bits_to_value, value_to_bits};

/// A 16-bit message packet: up to two hand-signal message IDs. The second
/// slot uses [`NO_MESSAGE`] when only one signal is sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessagePacket {
    /// First message ID.
    pub first: u8,
    /// Optional second message ID.
    pub second: Option<u8>,
}

/// Sentinel for an empty second slot (outside the 240-message space).
pub const NO_MESSAGE: u8 = 0xFF;

impl MessagePacket {
    /// Creates a single-message packet.
    pub fn single(id: u8) -> Self {
        assert!((id as usize) < MESSAGE_COUNT);
        Self {
            first: id,
            second: None,
        }
    }

    /// Creates a two-message packet.
    pub fn pair(first: u8, second: u8) -> Self {
        assert!((first as usize) < MESSAGE_COUNT && (second as usize) < MESSAGE_COUNT);
        Self {
            first,
            second: Some(second),
        }
    }

    /// Serializes to the 16 payload bits (MSB first).
    pub fn to_bits(self) -> Vec<u8> {
        let second = self.second.unwrap_or(NO_MESSAGE);
        let value = ((self.first as u64) << 8) | second as u64;
        value_to_bits(value, 16)
    }

    /// Parses 16 payload bits with a typed rejection reason. The second
    /// slot must be a valid ID or exactly [`NO_MESSAGE`] — the in-between
    /// values (`MESSAGE_COUNT..NO_MESSAGE`) are unreachable from
    /// [`MessagePacket::to_bits`] and can only mean corruption, so they
    /// reject the packet rather than silently coercing to a
    /// single-message parse.
    pub fn try_from_bits(bits: &[u8]) -> Result<Self, ParseError> {
        if bits.len() != 16 {
            return Err(ParseError::BadLength {
                expect: 16,
                got: bits.len(),
            });
        }
        let value = bits_to_value(bits);
        let first = (value >> 8) as u8;
        let second = (value & 0xFF) as u8;
        if first as usize >= MESSAGE_COUNT {
            return Err(ParseError::InvalidField("first message ID"));
        }
        let second = if second == NO_MESSAGE {
            None
        } else if (second as usize) < MESSAGE_COUNT {
            Some(second)
        } else {
            return Err(ParseError::InvalidField("second message ID"));
        };
        Ok(Self { first, second })
    }

    /// Parses 16 payload bits; `None` on any decode error (the erasure
    /// path — see [`MessagePacket::try_from_bits`] for the reason).
    pub fn from_bits(bits: &[u8]) -> Option<Self> {
        Self::try_from_bits(bits).ok()
    }
}

/// SOS beacon payload: 6-bit user ID, optionally followed by an 8-bit hand
/// signal, framed by a fixed sync pattern for frame alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SosBeacon {
    /// 6-bit user ID (0..64).
    pub user_id: u8,
    /// Optional hand-signal message attached to the beacon.
    pub signal: Option<u8>,
}

/// Sync pattern prepended to every beacon (8 bits, good autocorrelation).
pub const SOS_SYNC: [u8; 8] = [1, 0, 1, 1, 0, 0, 1, 0];

impl SosBeacon {
    /// Creates a beacon with just a user ID.
    pub fn id_only(user_id: u8) -> Self {
        assert!(user_id < 64, "user ID is 6 bits");
        Self {
            user_id,
            signal: None,
        }
    }

    /// Creates a beacon carrying a hand signal.
    pub fn with_signal(user_id: u8, signal: u8) -> Self {
        assert!(user_id < 64 && (signal as usize) < MESSAGE_COUNT);
        Self {
            user_id,
            signal: Some(signal),
        }
    }

    /// Serializes to bits: sync + flag(1) + id(6) + [signal(8)].
    pub fn to_bits(self) -> Vec<u8> {
        let mut bits = SOS_SYNC.to_vec();
        bits.push(self.signal.is_some() as u8);
        bits.extend(value_to_bits(self.user_id as u64, 6));
        if let Some(s) = self.signal {
            bits.extend(value_to_bits(s as u64, 8));
        }
        bits
    }

    /// Parses a beacon from bits starting at the sync pattern, with a
    /// typed rejection reason. Returns the beacon and the number of bits
    /// consumed.
    pub fn try_from_bits(bits: &[u8]) -> Result<(Self, usize), ParseError> {
        let min = SOS_SYNC.len() + 7;
        if bits.len() < min {
            return Err(ParseError::Truncated {
                need: min,
                got: bits.len(),
            });
        }
        if bits[..8] != SOS_SYNC {
            return Err(ParseError::BadSync);
        }
        let has_signal = bits[8] == 1;
        let user_id = bits_to_value(&bits[9..15]) as u8;
        if has_signal {
            if bits.len() < 23 {
                return Err(ParseError::Truncated {
                    need: 23,
                    got: bits.len(),
                });
            }
            let signal = bits_to_value(&bits[15..23]) as u8;
            if signal as usize >= MESSAGE_COUNT {
                return Err(ParseError::InvalidField("hand signal"));
            }
            Ok((Self::with_signal(user_id, signal), 23))
        } else {
            Ok((Self::id_only(user_id), 15))
        }
    }

    /// Parses a beacon; `None` on any decode error (the erasure path).
    pub fn from_bits(bits: &[u8]) -> Option<(Self, usize)> {
        Self::try_from_bits(bits).ok()
    }

    /// Transmission time in seconds at a given beacon bit rate.
    pub fn duration_s(&self, bps: f64) -> f64 {
        self.to_bits().len() as f64 / bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_packet_roundtrip() {
        for pkt in [
            MessagePacket::single(0),
            MessagePacket::single(239),
            MessagePacket::pair(17, 203),
            MessagePacket::pair(239, 0),
        ] {
            let bits = pkt.to_bits();
            assert_eq!(bits.len(), 16);
            assert_eq!(MessagePacket::from_bits(&bits), Some(pkt));
        }
    }

    #[test]
    fn invalid_first_id_rejected() {
        let bits = value_to_bits(0xF0FF, 16); // first = 240 (out of range)
        assert_eq!(MessagePacket::from_bits(&bits), None);
    }

    #[test]
    fn wrong_length_rejected() {
        assert_eq!(MessagePacket::from_bits(&[0; 8]), None);
    }

    #[test]
    fn corrupted_second_id_rejected_not_coerced() {
        // A bit flip can turn a valid second ID into MESSAGE_COUNT..0xFF;
        // those values are unreachable from to_bits and must surface as a
        // decode error, not parse as a single-message packet.
        for second in MESSAGE_COUNT as u64..0xFF {
            let bits = value_to_bits((17 << 8) | second, 16);
            assert_eq!(
                MessagePacket::from_bits(&bits),
                None,
                "second = {second} silently coerced"
            );
        }
        // the exact sentinel still parses as a single-message packet
        let bits = value_to_bits((17 << 8) | 0xFF, 16);
        assert_eq!(
            MessagePacket::from_bits(&bits),
            Some(MessagePacket::single(17))
        );
    }

    #[test]
    fn corrupted_bits_roundtrip() {
        // flip every single bit of a valid two-message packet: the parse
        // either rejects or yields a packet that re-serializes to the
        // corrupted bits (no lossy coercion anywhere)
        let pkt = MessagePacket::pair(17, 203);
        let bits = pkt.to_bits();
        for i in 0..bits.len() {
            let mut bad = bits.clone();
            bad[i] ^= 1;
            if let Some(parsed) = MessagePacket::from_bits(&bad) {
                assert_eq!(parsed.to_bits(), bad, "lossy parse after flipping bit {i}");
            }
        }
    }

    #[test]
    fn sos_roundtrip_id_only() {
        let b = SosBeacon::id_only(42);
        let bits = b.to_bits();
        assert_eq!(bits.len(), 15);
        let (parsed, used) = SosBeacon::from_bits(&bits).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(used, 15);
    }

    #[test]
    fn sos_roundtrip_with_signal() {
        let b = SosBeacon::with_signal(63, 199);
        let bits = b.to_bits();
        assert_eq!(bits.len(), 23);
        let (parsed, used) = SosBeacon::from_bits(&bits).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(used, 23);
    }

    #[test]
    fn sos_rejects_bad_sync() {
        let mut bits = SosBeacon::id_only(1).to_bits();
        bits[0] ^= 1;
        assert!(SosBeacon::from_bits(&bits).is_none());
    }

    #[test]
    fn sos_duration_at_10bps_is_about_a_second() {
        // The paper: an 8-bit hand signal at these rates sends "in around a
        // second" (23 bits at 10 bps = 2.3 s full frame; the signal part
        // alone is 0.8 s; ID-only beacons are 1.5 s).
        let b = SosBeacon::id_only(5);
        assert!((b.duration_s(10.0) - 1.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "6 bits")]
    fn oversized_user_id_panics() {
        let _ = SosBeacon::id_only(64);
    }
}
