//! Messaging latency accounting (§5 "Messaging latency").
//!
//! The paper argues the bit rates suffice for messaging: a 240-message
//! selection is ~8 bits (12 after coding), about half a second at 25 bps;
//! at 1 kbps a 50-character free-text message fits in half a second. These
//! helpers compute airtime for both framings so the app can show an ETA.

/// Airtime in seconds to move `payload_bits` at a coded bitrate of
/// `coded_bps` (the paper's bitrate metric already includes the 2/3 code).
pub fn payload_airtime_s(payload_bits: usize, coded_bps: f64) -> f64 {
    assert!(coded_bps > 0.0);
    payload_bits as f64 / (coded_bps * 2.0 / 3.0) * 1.0
}

/// Airtime for one hand-signal selection (8 bits → 12 coded) at a given
/// coded bitrate.
pub fn hand_signal_airtime_s(coded_bps: f64) -> f64 {
    payload_airtime_s(8, coded_bps)
}

/// Airtime for a free-text message of `chars` ASCII characters.
pub fn text_airtime_s(chars: usize, coded_bps: f64) -> f64 {
    payload_airtime_s(chars * 8, coded_bps)
}

/// Full exchange latency: protocol overhead (preamble, ID, feedback gap)
/// plus the data airtime. `overhead_s` comes from the frame layout
/// (`FrameConfig::data_start_offset` / sample rate ≈ 0.29 s by default).
pub fn exchange_latency_s(payload_bits: usize, coded_bps: f64, overhead_s: f64) -> f64 {
    overhead_s + payload_airtime_s(payload_bits, coded_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_hold() {
        // "It takes close to half a second to send this message at 25 bps"
        // (8-bit hand signal → 12 coded bits at 25 coded bps).
        let t = hand_signal_airtime_s(25.0);
        assert!((t - 0.48).abs() < 0.01, "{t}");
        // "At 1 kbps, we can even send a 50 character message in half a
        // second" (400 bits → 600 coded at 1000+ bps...)
        let t = text_airtime_s(50, 1000.0);
        assert!(t < 0.7, "{t}");
    }

    #[test]
    fn sixteen_bit_packet_at_median_lake_rate() {
        // median 633 bps at 5 m: a two-signal packet flies in ~40 ms of
        // data airtime; the protocol overhead dominates.
        let data = payload_airtime_s(16, 633.3);
        assert!(data < 0.05, "{data}");
        let total = exchange_latency_s(16, 633.3, 0.29);
        assert!(total < 0.35, "{total}");
    }

    #[test]
    #[should_panic]
    fn zero_bitrate_panics() {
        let _ = payload_airtime_s(8, 0.0);
    }
}
