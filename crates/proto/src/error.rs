//! Typed wire-parse errors for the packet and transfer formats.
//!
//! The `from_bits` parsers historically returned bare `Option`s — enough
//! for a PHY that treats every bad frame as an erasure, but opaque to
//! callers that want to distinguish "too short to even try" from "CRC
//! said corrupt" from "well-formed bits encoding an impossible value".
//! Each format now has a `try_from_bits` returning one of these (the
//! [`crate::transfer::PlanError`] pattern), and the `Option` forms are
//! thin `.ok()` wrappers kept for the erasure-path callers.

use std::fmt;

/// Why a wire parse rejected its bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Fewer bits than the smallest possible frame.
    Truncated {
        /// Minimum bits a frame of this type can occupy.
        need: usize,
        /// Bits actually offered.
        got: usize,
    },
    /// Bit count inconsistent with the frame's own framing.
    BadLength {
        /// Bits the frame's framing implies.
        expect: usize,
        /// Bits actually offered.
        got: usize,
    },
    /// The frame's CRC did not match its contents.
    CrcMismatch,
    /// The sync pattern at the head of the frame did not match.
    BadSync,
    /// The bits are well-formed but encode an impossible value for the
    /// named field.
    InvalidField(&'static str),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { need, got } => {
                write!(f, "truncated frame: need at least {need} bits, got {got}")
            }
            Self::BadLength { expect, got } => {
                write!(f, "bad frame length: expected {expect} bits, got {got}")
            }
            Self::CrcMismatch => write!(f, "CRC mismatch"),
            Self::BadSync => write!(f, "sync pattern mismatch"),
            Self::InvalidField(name) => write!(f, "invalid field: {name}"),
        }
    }
}

impl std::error::Error for ParseError {}
