//! # aqua-proto
//!
//! The messaging layer of AquaApp: the 240-message diver hand-signal
//! codebook in eight categories ([`messages`]), the on-air packet formats
//! ([`packet`]) — 16-bit two-signal message packets and FSK SOS beacons
//! with 6-bit user IDs — and the bulk transfer layer ([`transfer`]):
//! file/image segmentation across many packets with a Reed–Solomon outer
//! erasure code and selective-repeat reassembly (DESIGN.md §12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod latency;
pub mod messages;
pub mod packet;
pub mod transfer;

pub use error::ParseError;
pub use messages::{by_category, by_id, codebook, common_messages, Category, Message};
pub use packet::{MessagePacket, SosBeacon};
pub use transfer::{Fragment, Reassembler, TransferParams, TransferPlan};
