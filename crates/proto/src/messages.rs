//! The diver hand-signal message codebook (§3, Fig. 2).
//!
//! The app offers 240 predefined messages across eight categories — the
//! vocabulary professional divers cover with hand signals — with the 20
//! most common surfaced for quick access. A message ID fits in 8 bits; a
//! 16-bit packet carries two messages.

/// Message categories, mirroring the app's eight filter groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Safety-critical signals (out of air, emergency, abort).
    Safety,
    /// Air/gas management.
    Air,
    /// Direction and navigation.
    Direction,
    /// Buddy coordination.
    Buddy,
    /// Marine life sightings.
    MarineLife,
    /// Equipment issues.
    Equipment,
    /// Physical condition.
    Condition,
    /// General communication.
    General,
}

impl Category {
    /// All categories in display order.
    pub const ALL: [Category; 8] = [
        Category::Safety,
        Category::Air,
        Category::Direction,
        Category::Buddy,
        Category::MarineLife,
        Category::Equipment,
        Category::Condition,
        Category::General,
    ];

    fn stem(&self) -> (&'static str, &'static [&'static str]) {
        match self {
            Category::Safety => (
                "safety",
                &[
                    "Emergency - help",
                    "Out of air",
                    "Share air",
                    "Abort dive",
                    "Ascend now",
                    "Stop - stay put",
                    "Danger ahead",
                    "Entangled",
                    "Decompression required",
                    "Missed deco stop",
                    "Free flow regulator",
                    "Surface immediately",
                    "Distress - assist buddy",
                    "Caught in current",
                    "Low visibility - hold line",
                    "Emergency ascent",
                    "Call boat",
                    "Need safety stop",
                    "Lost - regroup",
                    "Injury - cramp",
                    "Cannot equalize",
                    "Watch overhead",
                    "Line trap",
                    "Net hazard",
                    "Propeller noise",
                    "Strong surge",
                    "Cold - ending dive",
                    "Buddy missing",
                    "Tangled in kelp",
                    "Sharp object",
                ],
            ),
            Category::Air => (
                "air",
                &[
                    "Air OK",
                    "50 bar remaining",
                    "100 bar remaining",
                    "150 bar remaining",
                    "Half tank",
                    "Reserve reached",
                    "Check your air",
                    "How much air?",
                    "Switching to backup",
                    "Octopus ready",
                    "Air sharing drill",
                    "Gas switch",
                    "Rich mix",
                    "Lean mix",
                    "Check SPG",
                    "Slow breathing",
                    "Air consumption high",
                    "Tank valve check",
                    "Regulator issue",
                    "Bubbles from tank",
                    "O-ring leak",
                    "Stage bottle",
                    "Pony bottle",
                    "Check manifold",
                    "Isolator closed",
                    "Deco gas ready",
                    "Travel gas",
                    "Analyze mix",
                    "Top up tank",
                    "Turn pressure reached",
                ],
            ),
            Category::Direction => (
                "direction",
                &[
                    "Go up",
                    "Go down",
                    "Turn around",
                    "Go left",
                    "Go right",
                    "This way",
                    "Follow me",
                    "Lead the way",
                    "Stay at this depth",
                    "Level off",
                    "Head to shore",
                    "Head to boat",
                    "Against current",
                    "With current",
                    "Circle the reef",
                    "Through the passage",
                    "Around the wreck",
                    "Back to line",
                    "To the anchor",
                    "Mid-water crossing",
                    "Follow the wall",
                    "Over the ridge",
                    "Under the arch",
                    "Into the cavern",
                    "Exit here",
                    "Compass heading north",
                    "Compass heading south",
                    "Shallow route",
                    "Deep route",
                    "Shortcut home",
                ],
            ),
            Category::Buddy => (
                "buddy",
                &[
                    "Are you OK?",
                    "I am OK",
                    "Buddy up",
                    "Stay close",
                    "Watch me",
                    "Watch my bubbles",
                    "Hold hands",
                    "Link arms",
                    "You lead",
                    "I lead",
                    "Stay behind me",
                    "Next to me",
                    "Check my back",
                    "Check my valve",
                    "Photograph me",
                    "Wait for me",
                    "Slow down",
                    "Speed up",
                    "Meet at line",
                    "Buddy check",
                    "Signal the group",
                    "Count heads",
                    "Pair with them",
                    "Three-person team",
                    "Close formation",
                    "Spread out",
                    "Hold position",
                    "Rotate leader",
                    "Eyes on me",
                    "Buddy line on",
                ],
            ),
            Category::MarineLife => (
                "marine-life",
                &[
                    "Shark",
                    "Turtle",
                    "Octopus",
                    "Eel",
                    "Ray",
                    "Dolphin",
                    "Whale",
                    "Seahorse",
                    "Lionfish - caution",
                    "Jellyfish - caution",
                    "Stonefish - danger",
                    "Fire coral - avoid",
                    "School of fish",
                    "Big fish",
                    "Small critter",
                    "Nudibranch",
                    "Crab",
                    "Lobster",
                    "Anemone",
                    "Coral garden",
                    "Sea urchin - careful",
                    "Barracuda",
                    "Grouper",
                    "Manta",
                    "Seal",
                    "Look under ledge",
                    "In the blue",
                    "On the sand",
                    "Camouflaged - look close",
                    "Rare find",
                ],
            ),
            Category::Equipment => (
                "equipment",
                &[
                    "Mask flooding",
                    "Fin strap loose",
                    "BCD inflating",
                    "BCD not holding air",
                    "Weight belt slipping",
                    "Drop weights",
                    "Computer error",
                    "Torch failing",
                    "Camera issue",
                    "Reel jammed",
                    "SMB deploy",
                    "Dry suit leak",
                    "Glove torn",
                    "Hood squeeze",
                    "Strap broken",
                    "Clip lost",
                    "Spare mask",
                    "Check my tank band",
                    "Console stuck",
                    "Compass broken",
                    "Battery low",
                    "Memory card full",
                    "Strobe misfire",
                    "Knife needed",
                    "Backup light on",
                    "Check my hose",
                    "Inflator stuck",
                    "Dump valve leak",
                    "Tank slipping",
                    "Mouthpiece torn",
                ],
            ),
            Category::Condition => (
                "condition",
                &[
                    "I am cold",
                    "I am tired",
                    "Cramp in leg",
                    "Ear problem",
                    "Sinus pain",
                    "Dizzy",
                    "Nauseous",
                    "Narced - going up",
                    "Breathing hard",
                    "Heart racing",
                    "Feeling great",
                    "Need a rest",
                    "Vertigo",
                    "Numb fingers",
                    "Headache",
                    "Seasick",
                    "Too much weight",
                    "Too light",
                    "Overheating",
                    "Hungry - ending soon",
                    "Thirsty",
                    "Leg asleep",
                    "Shoulder pain",
                    "Back pain",
                    "All good",
                    "Ears OK now",
                    "Warming up",
                    "Catching breath",
                    "Comfortable depth",
                    "Ready to continue",
                ],
            ),
            Category::General => (
                "general",
                &[
                    "Yes",
                    "No",
                    "Maybe",
                    "Wait",
                    "Hurry",
                    "Look",
                    "Listen",
                    "Come here",
                    "Go away",
                    "Good job",
                    "Thank you",
                    "Sorry",
                    "How deep?",
                    "What time?",
                    "Five minutes",
                    "Ten minutes",
                    "Half hour",
                    "Turn the dive",
                    "Safety stop now",
                    "Surface interval",
                    "Log this",
                    "Mark the spot",
                    "Take a photo",
                    "Record video",
                    "Practice drill",
                    "Training exercise",
                    "Fun dive",
                    "Work dive",
                    "Night signal",
                    "End of dive",
                ],
            ),
        }
    }
}

/// Total number of messages in the codebook.
pub const MESSAGE_COUNT: usize = 240;

/// A message in the codebook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Message ID (0..240), what goes on the air.
    pub id: u8,
    /// Category.
    pub category: Category,
    /// Display text.
    pub text: &'static str,
}

/// Returns the full 240-message codebook, IDs assigned category by
/// category in [`Category::ALL`] order.
pub fn codebook() -> Vec<Message> {
    let mut out = Vec::with_capacity(MESSAGE_COUNT);
    let mut id = 0u8;
    for cat in Category::ALL {
        let (_, texts) = cat.stem();
        for &text in texts {
            out.push(Message {
                id,
                category: cat,
                text,
            });
            id = id.wrapping_add(1);
        }
    }
    out
}

/// Looks up a message by ID.
pub fn by_id(id: u8) -> Option<Message> {
    let book = codebook();
    book.get(id as usize).copied()
}

/// Looks up messages by category.
pub fn by_category(cat: Category) -> Vec<Message> {
    codebook()
        .into_iter()
        .filter(|m| m.category == cat)
        .collect()
}

/// The 20 most common signals, surfaced prominently in the app UI
/// (recreational divers use 10–20 signals day to day).
pub fn common_messages() -> Vec<Message> {
    let book = codebook();
    let picks: [&str; 20] = [
        "Are you OK?",
        "I am OK",
        "Go up",
        "Go down",
        "Out of air",
        "Share air",
        "Emergency - help",
        "Stop - stay put",
        "Turn around",
        "This way",
        "Follow me",
        "Stay close",
        "Air OK",
        "50 bar remaining",
        "Half tank",
        "Check your air",
        "Yes",
        "No",
        "Wait",
        "End of dive",
    ];
    picks
        .iter()
        .map(|&t| {
            *book
                .iter()
                .find(|m| m.text == t)
                .expect("common message in codebook")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codebook_has_exactly_240_messages() {
        assert_eq!(codebook().len(), MESSAGE_COUNT);
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let book = codebook();
        for (i, m) in book.iter().enumerate() {
            assert_eq!(m.id as usize, i);
        }
    }

    #[test]
    fn eight_categories_all_nonempty() {
        for cat in Category::ALL {
            let msgs = by_category(cat);
            assert!(msgs.len() >= 20, "{cat:?} has only {}", msgs.len());
        }
    }

    #[test]
    fn ids_fit_in_eight_bits() {
        // 240 <= 256: a message ID fits one byte, two per 16-bit packet
        assert!(MESSAGE_COUNT <= 256);
        let last = codebook().last().unwrap().id;
        assert_eq!(last as usize, MESSAGE_COUNT - 1);
    }

    #[test]
    fn common_list_has_20_unique_messages() {
        let common = common_messages();
        assert_eq!(common.len(), 20);
        let mut ids: Vec<u8> = common.iter().map(|m| m.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn by_id_roundtrips() {
        for m in codebook() {
            assert_eq!(by_id(m.id), Some(m));
        }
        assert_eq!(by_id(240), None);
    }

    #[test]
    fn texts_are_unique() {
        let book = codebook();
        for (i, a) in book.iter().enumerate() {
            for b in &book[i + 1..] {
                assert_ne!(a.text, b.text, "duplicate text {:?}", a.text);
            }
        }
    }
}
