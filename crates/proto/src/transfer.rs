//! Bulk transfer layer: segmentation of an arbitrary byte stream
//! (file/image) across many OFDM packets, with an optional Reed–Solomon
//! outer code striped over whole packets (DESIGN.md §12).
//!
//! The paper's chat packets top out at 16 bits; AquaScope shows the same
//! hardware class moves *images* by pairing an inner bit-level code with an
//! outer erasure code over lost packets. This module provides the
//! data-plane pieces:
//!
//! - [`Fragment`]: one packet's payload on the wire — a 16-bit sequence
//!   number, `frag_bytes` of data, and a CRC-16 so the receiver detects
//!   residual corruption *itself* (the trial engine's ground-truth
//!   `packet_ok` is not available on a real device). A CRC-failed fragment
//!   becomes an erasure for the outer code.
//! - [`TransferPlan`]: the agreed geometry (total bytes, fragment size, RS
//!   generation shape). Both ends derive every sequence-number boundary
//!   from it; the plan itself rides the existing chat/ARQ channel during
//!   session setup.
//! - [`Reassembler`]: receiver state — duplicate suppression, per-
//!   generation completion tracking, selective-repeat feedback
//!   ([`Reassembler::missing`]) and final bit-exact assembly.
//!
//! Generations are `k` data fragments plus `p` parity fragments from
//! [`ReedSolomon::encode_stripes`]; any `k` of the `n = k + p` fragments
//! reconstruct the generation, so the ARQ stops chasing individual losses
//! once *enough* of a generation arrived. A short tail generation keeps the
//! same code by prepending virtual all-zero fragments (a shortened RS code)
//! that are never transmitted.

use crate::error::ParseError;
use aqua_coding::bits::{bits_to_bytes, bits_to_value, bytes_to_bits, value_to_bits};
use aqua_coding::crc::crc16;
use aqua_coding::rs::ReedSolomon;

/// Geometry of a bulk transfer, shared by both ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferParams {
    /// Data bytes carried per fragment (> 0).
    pub frag_bytes: usize,
    /// Data fragments per RS generation (the code's `k`; > 0).
    pub gen_data: usize,
    /// Parity fragments per generation (0 disables the outer code).
    pub parity: usize,
}

impl TransferParams {
    /// A small default tuned for the Lake experiments: 30-byte fragments,
    /// RS(16, 12) generations (33% parity, up to 4 lost packets per
    /// generation recovered without retransmission).
    pub fn default_rs() -> Self {
        Self {
            frag_bytes: 30,
            gen_data: 12,
            parity: 4,
        }
    }

    /// The same geometry with the outer code disabled (ARQ-only baseline).
    pub fn without_fec(self) -> Self {
        Self { parity: 0, ..self }
    }

    /// Bits on the wire per fragment: seq(16) + payload + crc16(16).
    pub fn frag_bits(&self) -> usize {
        32 + 8 * self.frag_bytes
    }
}

/// One transmitted fragment: sequence number plus `frag_bytes` of payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fragment {
    /// Global sequence number (see [`TransferPlan`] for the layout).
    pub seq: u16,
    /// Payload bytes (data fragment) or parity bytes (parity fragment).
    pub payload: Vec<u8>,
}

impl Fragment {
    /// Serializes to wire bits: seq(16) | payload | crc16(seq ‖ payload).
    pub fn to_bits(&self) -> Vec<u8> {
        let mut framed = Vec::with_capacity(2 + self.payload.len());
        framed.extend_from_slice(&self.seq.to_be_bytes());
        framed.extend_from_slice(&self.payload);
        let crc = crc16(&framed);
        let mut bits = bytes_to_bits(&framed);
        bits.extend(value_to_bits(crc as u64, 16));
        bits
    }

    /// Parses wire bits with a typed rejection reason.
    pub fn try_from_bits(bits: &[u8]) -> Result<Self, ParseError> {
        // minimum frame: seq(16) + one payload byte + crc(16) = 40 bits
        if bits.len() < 40 {
            return Err(ParseError::Truncated {
                need: 40,
                got: bits.len(),
            });
        }
        if bits.len() % 8 != 0 {
            return Err(ParseError::BadLength {
                expect: bits.len() / 8 * 8,
                got: bits.len(),
            });
        }
        let framed = bits_to_bytes(&bits[..bits.len() - 16]);
        let crc = bits_to_value(&bits[bits.len() - 16..]) as u16;
        if crc16(&framed) != crc {
            return Err(ParseError::CrcMismatch);
        }
        let seq = u16::from_be_bytes([framed[0], framed[1]]);
        Ok(Self {
            seq,
            payload: framed[2..].to_vec(),
        })
    }

    /// Parses wire bits; `None` on any decode error — the caller treats
    /// that packet as an erasure for the outer code.
    pub fn from_bits(bits: &[u8]) -> Option<Self> {
        Self::try_from_bits(bits).ok()
    }
}

/// The agreed transfer geometry: payload size plus fragment/generation
/// shape. All sequence arithmetic lives here so sender and receiver can
/// never disagree on the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferPlan {
    /// Total payload bytes being transferred.
    pub total_bytes: usize,
    /// Fragment/generation geometry.
    pub params: TransferParams,
}

/// Why a transfer plan (or the engine consuming it) rejected its inputs.
/// The bulk engines return these as typed errors instead of panicking in
/// the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// `total_bytes` was 0 — nothing to transfer.
    EmptyTransfer,
    /// `frag_bytes` was 0.
    ZeroFragmentSize,
    /// `gen_data` was 0.
    ZeroGenerationData,
    /// `gen_data + parity` exceeds the GF(256) RS code length.
    GenerationTooLarge,
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyTransfer => write!(f, "empty transfer"),
            Self::ZeroFragmentSize => write!(f, "fragment size must be positive"),
            Self::ZeroGenerationData => write!(f, "generation needs data fragments"),
            Self::GenerationTooLarge => write!(f, "RS generation exceeds GF(256)"),
        }
    }
}

impl std::error::Error for PlanError {}

impl TransferPlan {
    /// Builds a plan, rejecting degenerate geometry with a typed error.
    pub fn try_new(total_bytes: usize, params: TransferParams) -> Result<Self, PlanError> {
        if total_bytes == 0 {
            return Err(PlanError::EmptyTransfer);
        }
        if params.frag_bytes == 0 {
            return Err(PlanError::ZeroFragmentSize);
        }
        if params.gen_data == 0 {
            return Err(PlanError::ZeroGenerationData);
        }
        if params.gen_data + params.parity > 255 {
            return Err(PlanError::GenerationTooLarge);
        }
        Ok(Self {
            total_bytes,
            params,
        })
    }

    /// Builds a plan; panics on degenerate geometry (use
    /// [`Self::try_new`] where the inputs are not statically known-good).
    pub fn new(total_bytes: usize, params: TransferParams) -> Self {
        Self::try_new(total_bytes, params).expect("degenerate transfer geometry")
    }

    /// Number of data fragments.
    pub fn data_frags(&self) -> usize {
        self.total_bytes.div_ceil(self.params.frag_bytes)
    }

    /// Number of generations.
    pub fn generations(&self) -> usize {
        self.data_frags().div_ceil(self.params.gen_data)
    }

    /// Data fragments in generation `g` (the tail may be short).
    pub fn gen_data_count(&self, g: usize) -> usize {
        let full = self.params.gen_data;
        if g + 1 < self.generations() {
            full
        } else {
            self.data_frags() - (self.generations() - 1) * full
        }
    }

    /// Transmitted fragments in generation `g` (data + parity).
    pub fn gen_frag_count(&self, g: usize) -> usize {
        self.gen_data_count(g) + self.params.parity
    }

    /// First sequence number of generation `g`.
    pub fn gen_start(&self, g: usize) -> usize {
        // only the last generation is ever short, so every earlier one
        // contributes the full (gen_data + parity) fragments
        g * (self.params.gen_data + self.params.parity)
    }

    /// Total fragments on the wire (data + parity across generations).
    pub fn total_frags(&self) -> usize {
        self.gen_start(self.generations() - 1) + self.gen_frag_count(self.generations() - 1)
    }

    /// Maps a sequence number to `(generation, index within generation)`.
    pub fn locate(&self, seq: usize) -> Option<(usize, usize)> {
        if seq >= self.total_frags() {
            return None;
        }
        let stride = self.params.gen_data + self.params.parity;
        let g = (seq / stride).min(self.generations() - 1);
        Some((g, seq - self.gen_start(g)))
    }

    /// The RS codec for generations, or `None` when parity is disabled.
    fn codec(&self) -> Option<ReedSolomon> {
        (self.params.parity > 0).then(|| {
            ReedSolomon::new(
                self.params.gen_data + self.params.parity,
                self.params.gen_data,
            )
        })
    }

    /// Segments `data` (must be `total_bytes` long) into the full on-air
    /// fragment sequence: per generation, the data fragments followed by
    /// their RS parity fragments.
    pub fn segment(&self, data: &[u8]) -> Vec<Fragment> {
        assert_eq!(data.len(), self.total_bytes, "payload/plan size mismatch");
        let fb = self.params.frag_bytes;
        let mut padded = data.to_vec();
        padded.resize(self.data_frags() * fb, 0);
        let chunks: Vec<Vec<u8>> = padded.chunks(fb).map(|c| c.to_vec()).collect();
        let codec = self.codec();

        let mut out = Vec::with_capacity(self.total_frags());
        let mut next_data = 0usize;
        for g in 0..self.generations() {
            let kg = self.gen_data_count(g);
            let gen_chunks = &chunks[next_data..next_data + kg];
            next_data += kg;
            let start = self.gen_start(g);
            for (i, chunk) in gen_chunks.iter().enumerate() {
                out.push(Fragment {
                    seq: (start + i) as u16,
                    payload: chunk.clone(),
                });
            }
            if let Some(rs) = &codec {
                // shortened code: virtual all-zero fragments fill the front
                let pad = self.params.gen_data - kg;
                let mut full: Vec<Vec<u8>> = vec![vec![0u8; fb]; pad];
                full.extend(gen_chunks.iter().cloned());
                for (p, parity) in rs.encode_stripes(&full).into_iter().enumerate() {
                    out.push(Fragment {
                        seq: (start + kg + p) as u16,
                        payload: parity,
                    });
                }
            }
        }
        out
    }
}

/// What [`Reassembler::accept`] decided about a fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accept {
    /// New fragment, stored.
    Fresh,
    /// Already held (retransmission after a lost ACK) — suppressed.
    Duplicate,
    /// Sequence number outside the plan, or payload length mismatch.
    Invalid,
}

/// Receiver-side reassembly state for one transfer.
#[derive(Debug, Clone)]
pub struct Reassembler {
    plan: TransferPlan,
    slots: Vec<Option<Vec<u8>>>,
    duplicates: usize,
}

impl Reassembler {
    /// Fresh state for an incoming transfer described by `plan`.
    pub fn new(plan: TransferPlan) -> Self {
        let slots = vec![None; plan.total_frags()];
        Self {
            plan,
            slots,
            duplicates: 0,
        }
    }

    /// Offers a CRC-clean fragment. Duplicates are counted and suppressed.
    pub fn accept(&mut self, frag: &Fragment) -> Accept {
        let seq = frag.seq as usize;
        if seq >= self.slots.len() || frag.payload.len() != self.plan.params.frag_bytes {
            return Accept::Invalid;
        }
        if self.slots[seq].is_some() {
            self.duplicates += 1;
            return Accept::Duplicate;
        }
        self.slots[seq] = Some(frag.payload.clone());
        Accept::Fresh
    }

    /// Retransmissions that were recognized and suppressed so far.
    pub fn duplicates(&self) -> usize {
        self.duplicates
    }

    /// Whether `seq` is already held.
    pub fn has(&self, seq: usize) -> bool {
        self.slots.get(seq).is_some_and(|s| s.is_some())
    }

    /// Whether generation `g` can be reconstructed: with parity, any
    /// `gen_data_count(g)` of its fragments suffice; without, every data
    /// fragment must be present.
    pub fn generation_complete(&self, g: usize) -> bool {
        let start = self.plan.gen_start(g);
        let held = (start..start + self.plan.gen_frag_count(g))
            .filter(|&s| self.has(s))
            .count();
        if self.plan.params.parity == 0 {
            held == self.plan.gen_data_count(g)
        } else {
            held >= self.plan.gen_data_count(g)
        }
    }

    /// Whether every generation is reconstructible.
    pub fn complete(&self) -> bool {
        (0..self.plan.generations()).all(|g| self.generation_complete(g))
    }

    /// Sequence numbers still worth retransmitting: every unheld fragment
    /// of every incomplete generation (fragments of complete generations
    /// are no longer needed — the outer code already covers them).
    pub fn missing(&self) -> Vec<u16> {
        let mut out = Vec::new();
        for g in 0..self.plan.generations() {
            if self.generation_complete(g) {
                continue;
            }
            let start = self.plan.gen_start(g);
            for s in start..start + self.plan.gen_frag_count(g) {
                if !self.has(s) {
                    out.push(s as u16);
                }
            }
        }
        out
    }

    /// Reconstructs the payload bit-exact once [`Self::complete`]; `None`
    /// otherwise (or when an RS stripe fails, which a complete generation
    /// cannot hit by construction).
    pub fn assemble(&self) -> Option<Vec<u8>> {
        if !self.complete() {
            return None;
        }
        let fb = self.plan.params.frag_bytes;
        let mut data = Vec::with_capacity(self.plan.data_frags() * fb);
        for g in 0..self.plan.generations() {
            let kg = self.plan.gen_data_count(g);
            let start = self.plan.gen_start(g);
            if self.plan.params.parity == 0 {
                for s in start..start + kg {
                    data.extend_from_slice(self.slots[s].as_ref()?);
                }
                continue;
            }
            let pad = self.plan.params.gen_data - kg;
            let mut slots: Vec<Option<Vec<u8>>> = vec![Some(vec![0u8; fb]); pad];
            for s in start..start + self.plan.gen_frag_count(g) {
                slots.push(self.slots[s].clone());
            }
            let rs = self.plan.codec()?;
            let rows = rs.recover_stripes(&slots, fb)?;
            for row in &rows[pad..] {
                data.extend_from_slice(row);
            }
        }
        data.truncate(self.plan.total_bytes);
        Some(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 131 + 17) as u8).collect()
    }

    fn plan(total: usize, parity: usize) -> TransferPlan {
        TransferPlan::new(
            total,
            TransferParams {
                frag_bytes: 8,
                gen_data: 4,
                parity,
            },
        )
    }

    #[test]
    fn try_new_rejects_degenerate_geometry_with_typed_errors() {
        let p = TransferParams::default_rs();
        assert_eq!(TransferPlan::try_new(0, p), Err(PlanError::EmptyTransfer));
        assert_eq!(
            TransferPlan::try_new(100, TransferParams { frag_bytes: 0, ..p }),
            Err(PlanError::ZeroFragmentSize)
        );
        assert_eq!(
            TransferPlan::try_new(100, TransferParams { gen_data: 0, ..p }),
            Err(PlanError::ZeroGenerationData)
        );
        assert_eq!(
            TransferPlan::try_new(
                100,
                TransferParams {
                    gen_data: 200,
                    parity: 100,
                    ..p
                }
            ),
            Err(PlanError::GenerationTooLarge)
        );
        assert!(TransferPlan::try_new(100, p).is_ok());
        assert_eq!(format!("{}", PlanError::EmptyTransfer), "empty transfer");
    }

    #[test]
    fn fragment_bits_roundtrip() {
        let f = Fragment {
            seq: 1234,
            payload: demo_payload(8),
        };
        let bits = f.to_bits();
        assert_eq!(bits.len(), 32 + 8 * 8); // seq + crc + payload
        assert_eq!(Fragment::from_bits(&bits), Some(f));
    }

    #[test]
    fn corrupted_fragment_fails_crc() {
        let f = Fragment {
            seq: 7,
            payload: demo_payload(8),
        };
        let bits = f.to_bits();
        for i in 0..bits.len() {
            let mut bad = bits.clone();
            bad[i] ^= 1;
            assert_eq!(Fragment::from_bits(&bad), None, "flip {i} got through");
        }
    }

    #[test]
    fn segmentation_layout_counts() {
        // 100 bytes / 8 per frag = 13 data frags = 3 full gens of 4 + tail 1
        let p = plan(100, 2);
        assert_eq!(p.data_frags(), 13);
        assert_eq!(p.generations(), 4);
        assert_eq!(p.gen_data_count(3), 1);
        assert_eq!(p.gen_frag_count(3), 3);
        assert_eq!(p.total_frags(), 3 * 6 + 3);
        assert_eq!(p.locate(0), Some((0, 0)));
        assert_eq!(p.locate(18), Some((3, 0)));
        assert_eq!(p.locate(20), Some((3, 2)));
        assert_eq!(p.locate(21), None);
        let frags = p.segment(&demo_payload(100));
        assert_eq!(frags.len(), p.total_frags());
        for (i, f) in frags.iter().enumerate() {
            assert_eq!(f.seq as usize, i);
            assert_eq!(f.payload.len(), 8);
        }
    }

    #[test]
    fn lossless_reassembly_roundtrips_no_fec() {
        let p = plan(97, 0); // tail fragment padded, then trimmed
        let payload = demo_payload(97);
        let mut r = Reassembler::new(p);
        for f in p.segment(&payload) {
            assert_eq!(r.accept(&f), Accept::Fresh);
        }
        assert!(r.complete());
        assert_eq!(r.assemble(), Some(payload));
    }

    #[test]
    fn parity_covers_full_budget_of_losses_per_generation() {
        let p = plan(96, 2); // 12 data frags = 3 exact generations
        let payload = demo_payload(96);
        let frags = p.segment(&payload);
        let mut r = Reassembler::new(p);
        for f in &frags {
            // drop 2 fragments of every generation (indices 1 and 3)
            let (_, idx) = p.locate(f.seq as usize).unwrap();
            if idx == 1 || idx == 3 {
                continue;
            }
            r.accept(f);
        }
        assert!(r.complete(), "2 losses per gen within RS(6,4) budget");
        assert_eq!(r.assemble(), Some(payload));
    }

    #[test]
    fn losses_beyond_parity_leave_generation_incomplete() {
        let p = plan(96, 2);
        let frags = p.segment(&demo_payload(96));
        let mut r = Reassembler::new(p);
        for f in &frags {
            let (g, idx) = p.locate(f.seq as usize).unwrap();
            if g == 1 && idx < 3 {
                continue; // 3 losses > parity 2 in generation 1
            }
            r.accept(f);
        }
        assert!(!r.generation_complete(1));
        assert!(r.generation_complete(0));
        assert_eq!(r.assemble(), None);
        // missing() asks only for generation 1's unheld fragments
        let missing = r.missing();
        assert_eq!(missing, vec![6, 7, 8]);
    }

    #[test]
    fn duplicates_are_suppressed_and_counted() {
        let p = plan(64, 2);
        let frags = p.segment(&demo_payload(64));
        let mut r = Reassembler::new(p);
        assert_eq!(r.accept(&frags[0]), Accept::Fresh);
        assert_eq!(r.accept(&frags[0]), Accept::Duplicate);
        assert_eq!(r.accept(&frags[0]), Accept::Duplicate);
        assert_eq!(r.duplicates(), 2);
        let mut bad = frags[1].clone();
        bad.seq = 9999;
        assert_eq!(r.accept(&bad), Accept::Invalid);
        let mut short = frags[1].clone();
        short.payload.pop();
        assert_eq!(r.accept(&short), Accept::Invalid);
    }

    #[test]
    fn shortened_tail_generation_recovers_from_losses() {
        // 34 bytes: gen0 = 4 data, gen1 = 1 data (+2 parity each)
        let p = plan(34, 2);
        let payload = demo_payload(34);
        let frags = p.segment(&payload);
        assert_eq!(p.gen_data_count(1), 1);
        let mut r = Reassembler::new(p);
        for f in &frags {
            // lose the tail generation's only data fragment: parity must
            // reconstruct it through the shortened code
            if f.seq as usize == p.gen_start(1) {
                continue;
            }
            r.accept(f);
        }
        assert!(r.complete());
        assert_eq!(r.assemble(), Some(payload));
    }
}
