//! Slot-level network simulation for the MAC experiments (Fig. 19).
//!
//! The Fig. 19 experiment spans minutes of wall-clock audio (120 packets ×
//! several transmitters) — too long to render sample-by-sample. Since
//! carrier-sense decisions depend only on 80 ms *energy* averages, the
//! simulator works at the energy-envelope level: per 80 ms slot, the energy
//! a node senses is the sum of active transmitters' link-budget gains plus
//! its noise floor. The link budget comes from the same channel model as
//! the waveform path (see [`crate::budget`]); the waveform-level
//! [`crate::carrier::CarrierSense`] is validated against real rendered
//! audio in its own tests.
//!
//! Collisions are accounted exactly as in the paper: two packets whose
//! start times fall within one packet duration of each other collide; the
//! collision fraction is the number of packets involved in any collision
//! divided by the total sent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// MAC simulation parameters.
#[derive(Debug, Clone)]
pub struct MacConfig {
    /// Sensing slot duration (seconds). The paper senses every 80 ms.
    pub slot_s: f64,
    /// Packet duration in seconds (header + feedback gap + data).
    pub packet_duration_s: f64,
    /// Packets each transmitter wants to send (paper: up to 120).
    pub max_packets: usize,
    /// Uniform range for the initial random delay, in seconds ("a random
    /// backoff period of multiple seconds").
    pub initial_delay_s: (f64, f64),
    /// Uniform range of the idle gap between a node's packets, in seconds.
    pub inter_packet_gap_s: (f64, f64),
    /// Whether carrier sense is enabled (the Fig. 19 comparison axis).
    pub carrier_sense: bool,
    /// Busy threshold as a linear power multiple of the node's noise floor.
    pub threshold_margin: f64,
    /// Random backoff drawn when the channel reads busy, in packet
    /// durations (inclusive range).
    pub cs_backoff_packets: (u32, u32),
}

impl Default for MacConfig {
    fn default() -> Self {
        Self {
            slot_s: 0.08,
            packet_duration_s: 0.55,
            max_packets: 120,
            initial_delay_s: (0.5, 5.0),
            inter_packet_gap_s: (0.2, 2.5),
            carrier_sense: true,
            threshold_margin: 4.0,
            cs_backoff_packets: (1, 4),
        }
    }
}

/// Result of a MAC simulation run.
#[derive(Debug, Clone)]
pub struct MacResult {
    /// Packet start times per transmitter (seconds).
    pub tx_times: Vec<Vec<f64>>,
    /// Fraction of packets involved in a collision (the paper's metric).
    pub collision_fraction: f64,
    /// Per-transmitter collision fractions.
    pub per_tx_collision_fraction: Vec<f64>,
    /// Total simulated time (seconds).
    pub duration_s: f64,
}

#[derive(Debug, Clone, Copy)]
enum NodeState {
    /// Waiting until this slot index before next action.
    WaitingUntil(usize),
    /// In carrier-sense backoff with this many slots remaining.
    Backoff(usize),
    /// Transmitting until this slot index.
    TransmittingUntil(usize),
    /// Sent all packets.
    Done,
}

/// Runs the slot-level MAC simulation.
///
/// `gains[i][j]` is the linear power gain from transmitter `i` to node `j`
/// (diagonal unused); `noise_floor[j]` is node `j`'s in-band noise power.
pub fn simulate(cfg: &MacConfig, gains: &[Vec<f64>], noise_floor: &[f64], seed: u64) -> MacResult {
    let n = gains.len();
    assert!(n >= 1 && noise_floor.len() == n);
    let mut rng = StdRng::seed_from_u64(seed);
    let packet_slots = (cfg.packet_duration_s / cfg.slot_s).ceil() as usize;
    let to_slots = |range: (f64, f64), rng: &mut StdRng| -> usize {
        let s: f64 = rng.gen_range(range.0..=range.1);
        (s / cfg.slot_s).ceil() as usize
    };

    let mut states: Vec<NodeState> = (0..n)
        .map(|_| NodeState::WaitingUntil(to_slots(cfg.initial_delay_s, &mut rng)))
        .collect();
    let mut sent: Vec<usize> = vec![0; n];
    let mut tx_times: Vec<Vec<f64>> = vec![Vec::new(); n];

    let mut slot = 0usize;
    let max_slots = 1_000_000; // safety stop (~22 hours simulated)
    while states.iter().any(|s| !matches!(s, NodeState::Done)) && slot < max_slots {
        // Energy each node senses this slot (sum of active others + noise).
        let active: Vec<bool> = states
            .iter()
            .map(|s| matches!(s, NodeState::TransmittingUntil(until) if slot < *until))
            .collect();
        let sensed: Vec<f64> = (0..n)
            .map(|j| {
                let mut p = noise_floor[j];
                for i in 0..n {
                    if i != j && active[i] {
                        p += gains[i][j];
                    }
                }
                p
            })
            .collect();

        for i in 0..n {
            match states[i] {
                NodeState::Done => {}
                NodeState::TransmittingUntil(until) => {
                    if slot >= until {
                        states[i] = if sent[i] >= cfg.max_packets {
                            NodeState::Done
                        } else {
                            NodeState::WaitingUntil(
                                slot + to_slots(cfg.inter_packet_gap_s, &mut rng),
                            )
                        };
                    }
                }
                NodeState::WaitingUntil(when) => {
                    if slot >= when {
                        let busy = sensed[i] > noise_floor[i] * cfg.threshold_margin;
                        if cfg.carrier_sense && busy {
                            let packets: u32 =
                                rng.gen_range(cfg.cs_backoff_packets.0..=cfg.cs_backoff_packets.1);
                            states[i] = NodeState::Backoff(packets as usize * packet_slots);
                        } else {
                            tx_times[i].push(slot as f64 * cfg.slot_s);
                            sent[i] += 1;
                            states[i] = NodeState::TransmittingUntil(slot + packet_slots);
                        }
                    }
                }
                NodeState::Backoff(remaining) => {
                    let busy = sensed[i] > noise_floor[i] * cfg.threshold_margin;
                    // The paper's rule: if energy is detected during the
                    // backoff, extend it so it cannot elapse mid-packet.
                    let mut rem = remaining.saturating_sub(1);
                    if busy && rem < packet_slots {
                        rem += packet_slots;
                    }
                    if rem == 0 {
                        if busy {
                            rem = packet_slots; // re-check after one packet
                        } else {
                            tx_times[i].push(slot as f64 * cfg.slot_s);
                            sent[i] += 1;
                            states[i] = NodeState::TransmittingUntil(slot + packet_slots);
                            continue;
                        }
                    }
                    states[i] = NodeState::Backoff(rem);
                }
            }
        }
        slot += 1;
    }

    let (collision_fraction, per_tx) = collision_stats(&tx_times, cfg.packet_duration_s);
    MacResult {
        tx_times,
        collision_fraction,
        per_tx_collision_fraction: per_tx,
        duration_s: slot as f64 * cfg.slot_s,
    }
}

/// Computes the paper's collision metric from packet start timestamps:
/// packets transmitted within one packet duration of each other collide.
pub fn collision_stats(tx_times: &[Vec<f64>], packet_duration_s: f64) -> (f64, Vec<f64>) {
    let mut all: Vec<(usize, f64)> = Vec::new();
    for (tx, times) in tx_times.iter().enumerate() {
        for &t in times {
            all.push((tx, t));
        }
    }
    all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let mut collided = vec![false; all.len()];
    for i in 0..all.len() {
        for j in i + 1..all.len() {
            if all[j].1 - all[i].1 >= packet_duration_s {
                break;
            }
            if all[i].0 != all[j].0 {
                collided[i] = true;
                collided[j] = true;
            }
        }
    }
    let total = all.len().max(1);
    let frac = collided.iter().filter(|&&c| c).count() as f64 / total as f64;
    // Per-transmitter fractions in one pass over the sorted list (this
    // used to re-scan the full list once per transmitter, O(N·T)).
    let mut sent = vec![0usize; tx_times.len()];
    let mut hit = vec![0usize; tx_times.len()];
    for (i, &(tx, _)) in all.iter().enumerate() {
        sent[tx] += 1;
        if collided[i] {
            hit[tx] += 1;
        }
    }
    let per_tx = sent
        .iter()
        .zip(&hit)
        .map(|(&s, &h)| if s == 0 { 0.0 } else { h as f64 / s as f64 })
        .collect();
    (frac, per_tx)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Symmetric gain matrix for `n` nodes a few meters apart with gains
    /// well above the noise floor (sensing is easy, as at 5-10 m).
    fn easy_gains(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let gains = vec![vec![1e-4; n]; n];
        let noise = vec![1e-6; n];
        (gains, noise)
    }

    fn cfg(carrier_sense: bool, max_packets: usize) -> MacConfig {
        MacConfig {
            carrier_sense,
            max_packets,
            ..MacConfig::default()
        }
    }

    #[test]
    fn all_packets_eventually_sent() {
        let (g, nf) = easy_gains(3);
        let r = simulate(&cfg(true, 30), &g, &nf, 1);
        for times in &r.tx_times {
            assert_eq!(times.len(), 30);
        }
    }

    #[test]
    fn carrier_sense_reduces_collisions() {
        let (g, nf) = easy_gains(4); // 3 tx + 1 rx-ish node (all send here)
        let with_cs = simulate(&cfg(true, 60), &g, &nf, 7);
        let without = simulate(&cfg(false, 60), &g, &nf, 7);
        assert!(
            with_cs.collision_fraction < without.collision_fraction * 0.5,
            "CS {} vs no-CS {}",
            with_cs.collision_fraction,
            without.collision_fraction
        );
        assert!(
            without.collision_fraction > 0.15,
            "uncoordinated load should collide"
        );
    }

    #[test]
    fn transmissions_never_overlap_with_perfect_sensing() {
        // With ideal sensing and zero propagation delay in the envelope
        // model, carrier sense leaves only same-slot starts as collisions —
        // they should be rare.
        let (g, nf) = easy_gains(3);
        let r = simulate(&cfg(true, 40), &g, &nf, 3);
        assert!(
            r.collision_fraction < 0.15,
            "residual {}",
            r.collision_fraction
        );
    }

    #[test]
    fn hidden_node_increases_collisions() {
        // Node 0 and node 1 cannot hear each other (gain below threshold)
        // but both reach node 2: carrier sense cannot help.
        let mut gains = vec![vec![1e-4; 3]; 3];
        gains[0][1] = 1e-9;
        gains[1][0] = 1e-9;
        let noise = vec![1e-6; 3];
        let hidden = simulate(&cfg(true, 60), &gains, &noise, 5);
        let (g2, nf2) = easy_gains(3);
        let normal = simulate(&cfg(true, 60), &g2, &nf2, 5);
        assert!(
            hidden.collision_fraction > normal.collision_fraction,
            "hidden {} vs normal {}",
            hidden.collision_fraction,
            normal.collision_fraction
        );
    }

    #[test]
    fn collision_stats_basic_cases() {
        // two packets overlapping from different tx -> both collided
        let times = vec![vec![0.0], vec![0.3]];
        let (f, per) = collision_stats(&times, 0.55);
        assert!((f - 1.0).abs() < 1e-12);
        assert_eq!(per, vec![1.0, 1.0]);
        // well separated -> no collision
        let times = vec![vec![0.0], vec![2.0]];
        let (f, _) = collision_stats(&times, 0.55);
        assert_eq!(f, 0.0);
        // same tx back-to-back is not a collision
        let times = vec![vec![0.0, 0.3]];
        let (f, _) = collision_stats(&times, 0.55);
        assert_eq!(f, 0.0);
    }

    #[test]
    fn collision_stats_edge_cases() {
        // empty schedules: zero fractions, one per-tx slot each
        let (f, per) = collision_stats(&[vec![], vec![]], 0.55);
        assert_eq!(f, 0.0);
        assert_eq!(per, vec![0.0, 0.0]);
        let (f, per) = collision_stats(&[], 0.55);
        assert_eq!(f, 0.0);
        assert!(per.is_empty());
        // zero packet duration: nothing can overlap, even identical times
        let (f, per) = collision_stats(&[vec![1.0, 1.0], vec![1.0]], 0.0);
        assert_eq!(f, 0.0);
        assert_eq!(per, vec![0.0, 0.0]);
        // single node: self-overlap is never a collision
        let (f, per) = collision_stats(&[vec![0.0, 0.1, 0.2]], 0.55);
        assert_eq!(f, 0.0);
        assert_eq!(per, vec![0.0]);
        // simultaneous timestamps across transmitters all collide
        let (f, per) = collision_stats(&[vec![2.0], vec![2.0], vec![2.0, 9.0]], 0.55);
        assert!((f - 0.75).abs() < 1e-12, "{f}");
        assert_eq!(per, vec![1.0, 1.0, 0.5]);
    }

    #[test]
    fn per_tx_fractions_match_slow_reference() {
        // The single-pass per-tx accounting must agree with the direct
        // per-transmitter rescan it replaced, bit for bit.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..20 {
            let n = rng.gen_range(1..5);
            let tx_times: Vec<Vec<f64>> = (0..n)
                .map(|_| {
                    (0..rng.gen_range(0..10))
                        .map(|_| rng.gen_range(0.0..6.0))
                        .collect()
                })
                .collect();
            let (_, per) = collision_stats(&tx_times, 0.55);
            let mut all: Vec<(usize, f64)> = Vec::new();
            for (tx, times) in tx_times.iter().enumerate() {
                for &t in times {
                    all.push((tx, t));
                }
            }
            all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let mut collided = vec![false; all.len()];
            for i in 0..all.len() {
                for j in i + 1..all.len() {
                    if all[j].1 - all[i].1 >= 0.55 {
                        break;
                    }
                    if all[i].0 != all[j].0 {
                        collided[i] = true;
                        collided[j] = true;
                    }
                }
            }
            for (tx, want) in per.iter().enumerate() {
                let mine: Vec<usize> = all
                    .iter()
                    .enumerate()
                    .filter(|(_, (t, _))| *t == tx)
                    .map(|(i, _)| i)
                    .collect();
                let reference = if mine.is_empty() {
                    0.0
                } else {
                    mine.iter().filter(|&&i| collided[i]).count() as f64 / mine.len() as f64
                };
                assert_eq!(want.to_bits(), reference.to_bits(), "tx {tx}");
            }
        }
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let (g, nf) = easy_gains(3);
        let a = simulate(&cfg(true, 20), &g, &nf, 11);
        let b = simulate(&cfg(true, 20), &g, &nf, 11);
        assert_eq!(a.tx_times, b.tx_times);
    }
}
