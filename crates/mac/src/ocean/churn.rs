//! Node churn for ocean deployments: hard failures with recovery, and
//! duty-cycle sleep.
//!
//! Real deployed nodes are not always-on: batteries brown out, moorings
//! drag, firmware watchdogs reboot, and long-lived sensors spend most of
//! their duty cycle asleep. Churn enters the event core through the
//! [`super::event::SimHooks::wake_at`] seam: a state event landing on an
//! unavailable node is *deferred* to its wake slot — no node state is
//! touched and no RNG is drawn, so a schedule with no downtime is
//! bit-identical to no churn at all (the oracle-equivalence contract the
//! event core is built on). A sleeping destination loses receptions at
//! resolve time instead.
//!
//! The whole schedule is precomputed from its own splitmix stream,
//! independent of the MAC RNG: churn timing never perturbs MAC draws, and
//! the same seed gives the same outages whatever the traffic does.

/// Churn model parameters. [`ChurnConfig::none`] disables everything.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Mean time between failures per node (seconds); `0` disables
    /// failures.
    pub mtbf_s: f64,
    /// Mean outage duration after a failure (seconds).
    pub mttr_s: f64,
    /// Fraction of each duty period a node is awake; `1.0` disables
    /// duty-cycle sleep.
    pub duty_cycle: f64,
    /// Duty period length (seconds); per-node phase is randomized.
    pub duty_period_s: f64,
}

impl ChurnConfig {
    /// No churn: every node up for the whole run.
    pub fn none() -> Self {
        Self {
            mtbf_s: 0.0,
            mttr_s: 0.0,
            duty_cycle: 1.0,
            duty_period_s: 0.0,
        }
    }

    /// True when this config produces no downtime at all.
    pub fn is_none(&self) -> bool {
        (self.mtbf_s <= 0.0 || self.mttr_s <= 0.0) && self.duty_cycle >= 1.0
    }
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self::none()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Exponential draw with the given mean (seconds).
fn exp_draw(state: &mut u64, mean_s: f64) -> f64 {
    let u = unit(state);
    -mean_s * (1.0 - u).ln()
}

/// Precomputed per-node downtime intervals in slot units.
#[derive(Debug, Clone)]
pub struct ChurnSchedule {
    /// Per node: disjoint `(down_start, down_end)` slot intervals,
    /// ascending. A node is unavailable at slot `t` iff some interval has
    /// `start <= t < end`.
    down: Vec<Vec<(u64, u64)>>,
    max_slots: u64,
}

impl ChurnSchedule {
    /// Generates the schedule for `nodes` nodes over `max_slots` slots of
    /// `slot_s` seconds. Deterministic in `(cfg, seed)`; the RNG stream is
    /// private to the schedule (per node, salted by index), so generation
    /// order never matters.
    pub fn generate(
        cfg: &ChurnConfig,
        nodes: usize,
        max_slots: u64,
        slot_s: f64,
        seed: u64,
    ) -> Self {
        let dur_s = max_slots as f64 * slot_s;
        let mut down = vec![Vec::new(); nodes];
        if cfg.is_none() {
            return Self { down, max_slots };
        }
        for (i, intervals) in down.iter_mut().enumerate() {
            let mut sec: Vec<(f64, f64)> = Vec::new();
            // hard failures: exponential uptime, exponential outage
            if cfg.mtbf_s > 0.0 && cfg.mttr_s > 0.0 {
                let mut st = seed ^ 0xFA11_0000u64.wrapping_add(i as u64).wrapping_mul(0x9E37);
                let mut t = exp_draw(&mut st, cfg.mtbf_s);
                while t < dur_s {
                    let outage = exp_draw(&mut st, cfg.mttr_s);
                    sec.push((t, (t + outage).min(dur_s)));
                    t += outage + exp_draw(&mut st, cfg.mtbf_s);
                }
            }
            // duty-cycle sleep: awake for the head of each period,
            // asleep for the tail, with per-node phase
            if cfg.duty_cycle < 1.0 && cfg.duty_period_s > 0.0 {
                let mut st = seed ^ 0xD1D0u64 ^ (i as u64).wrapping_mul(0x9E37_79B9);
                let phase = unit(&mut st) * cfg.duty_period_s;
                let awake_s = cfg.duty_cycle.max(0.0) * cfg.duty_period_s;
                let mut cycle = -cfg.duty_period_s + phase;
                while cycle < dur_s {
                    let (a, b) = (cycle + awake_s, cycle + cfg.duty_period_s);
                    if b > 0.0 && a < dur_s {
                        sec.push((a.max(0.0), b.min(dur_s)));
                    }
                    cycle += cfg.duty_period_s;
                }
            }
            *intervals = merge_to_slots(&mut sec, slot_s, max_slots);
        }
        Self { down, max_slots }
    }

    /// A schedule from explicit per-node downtime intervals in slot units
    /// (scenario scripts: a single duty-cycled gateway in an otherwise
    /// always-on fleet, a relay failing mid-custody). Intervals must be
    /// disjoint, ascending and within `max_slots`.
    pub fn from_intervals(down: Vec<Vec<(u64, u64)>>, max_slots: u64) -> Self {
        for iv in &down {
            for w in iv.windows(2) {
                assert!(w[0].1 < w[1].0, "intervals must be disjoint ascending");
            }
            for &(s, e) in iv {
                assert!(s < e && e <= max_slots, "interval ({s}, {e}) out of range");
            }
        }
        Self { down, max_slots }
    }

    /// If `node` is unavailable at `slot`, the slot at which it next
    /// wakes; `None` when available.
    pub fn wake_at(&self, node: usize, slot: u64) -> Option<u64> {
        let iv = &self.down[node];
        let idx = iv.partition_point(|&(s, _)| s <= slot);
        if idx > 0 {
            let (_, end) = iv[idx - 1];
            if slot < end {
                return Some(end);
            }
        }
        None
    }

    /// True when `node` is unavailable anywhere in `[a_slot, b_slot]`.
    pub fn down_during(&self, node: usize, a_slot: u64, b_slot: u64) -> bool {
        self.down[node]
            .iter()
            .any(|&(s, e)| s <= b_slot && a_slot < e)
    }

    /// The downtime intervals of one node, in slot units.
    pub fn intervals(&self, node: usize) -> &[(u64, u64)] {
        &self.down[node]
    }

    /// Number of nodes the schedule covers.
    pub fn nodes(&self) -> usize {
        self.down.len()
    }

    /// Merges two schedules over the same fleet and horizon: a node is
    /// down in the union iff it is down in either (sleep ∪ crash — the
    /// simulator defers events on the union but applies crash recovery
    /// only at crash wake edges). Union with an all-empty schedule
    /// reproduces `self` interval-for-interval, so adding a disabled
    /// crash model never perturbs a sleep-only run.
    pub fn union(&self, other: &ChurnSchedule) -> ChurnSchedule {
        assert_eq!(self.down.len(), other.down.len(), "fleet size mismatch");
        assert_eq!(self.max_slots, other.max_slots, "horizon mismatch");
        let down = self
            .down
            .iter()
            .zip(&other.down)
            .map(|(a, b)| {
                let mut iv: Vec<(u64, u64)> = a.iter().chain(b.iter()).copied().collect();
                iv.sort_unstable();
                let mut out: Vec<(u64, u64)> = Vec::new();
                for (s, e) in iv {
                    match out.last_mut() {
                        Some(last) if s <= last.1 => last.1 = last.1.max(e),
                        _ => out.push((s, e)),
                    }
                }
                out
            })
            .collect();
        ChurnSchedule {
            down,
            max_slots: self.max_slots,
        }
    }

    /// Fraction of the run the average node spends down.
    pub fn mean_downtime_frac(&self) -> f64 {
        if self.max_slots == 0 || self.down.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .down
            .iter()
            .flat_map(|iv| iv.iter().map(|&(s, e)| e - s))
            .sum();
        total as f64 / (self.max_slots as f64 * self.down.len() as f64)
    }
}

/// Sorts, merges and slot-quantizes second-domain downtime intervals.
fn merge_to_slots(sec: &mut Vec<(f64, f64)>, slot_s: f64, max_slots: u64) -> Vec<(u64, u64)> {
    sec.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite interval bounds"));
    let mut out: Vec<(u64, u64)> = Vec::new();
    for &(a, b) in sec.iter() {
        if b <= a {
            continue;
        }
        let s = (a / slot_s).floor() as u64;
        let e = ((b / slot_s).ceil() as u64).min(max_slots);
        if e <= s {
            continue;
        }
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_schedule_never_defers() {
        let sched = ChurnSchedule::generate(&ChurnConfig::none(), 8, 10_000, 0.05, 42);
        for node in 0..8 {
            for slot in [0, 1, 999, 9_999] {
                assert_eq!(sched.wake_at(node, slot), None);
                assert!(!sched.down_during(node, 0, 9_999));
            }
        }
        assert_eq!(sched.mean_downtime_frac(), 0.0);
    }

    #[test]
    fn failure_schedule_is_disjoint_ascending_and_seed_stable() {
        let cfg = ChurnConfig {
            mtbf_s: 60.0,
            mttr_s: 20.0,
            duty_cycle: 0.8,
            duty_period_s: 30.0,
        };
        let a = ChurnSchedule::generate(&cfg, 6, 20_000, 0.05, 7);
        let b = ChurnSchedule::generate(&cfg, 6, 20_000, 0.05, 7);
        assert_eq!(a.down, b.down, "same seed, same outages");

        let c = ChurnSchedule::generate(&cfg, 6, 20_000, 0.05, 8);
        assert_ne!(a.down, c.down, "different seed, different outages");

        let frac = a.mean_downtime_frac();
        assert!(
            frac > 0.05 && frac < 0.8,
            "downtime fraction should be moderate, got {frac:.3}"
        );
        for iv in &a.down {
            for w in iv.windows(2) {
                assert!(w[0].1 < w[1].0, "intervals disjoint and ascending");
            }
            for &(s, e) in iv {
                assert!(s < e && e <= 20_000);
            }
        }
    }

    #[test]
    fn union_merges_overlaps_and_empty_is_identity() {
        let a = ChurnSchedule::from_intervals(vec![vec![(10, 20), (40, 50)]], 100);
        let empty = ChurnSchedule::from_intervals(vec![Vec::new()], 100);
        assert_eq!(
            a.union(&empty).down,
            a.down,
            "union with no crash schedule must not perturb sleep intervals"
        );
        assert_eq!(empty.union(&a).down, a.down);

        let b = ChurnSchedule::from_intervals(vec![vec![(15, 30), (50, 60)]], 100);
        let u = a.union(&b);
        // (10,20)∪(15,30) merge; (40,50) touches (50,60) and merges too.
        assert_eq!(u.down[0], vec![(10, 30), (40, 60)]);
        assert_eq!(u.wake_at(0, 12), Some(30));
        assert!(u.down_during(0, 55, 55));
    }

    #[test]
    fn wake_at_points_past_the_outage() {
        let cfg = ChurnConfig {
            mtbf_s: 40.0,
            mttr_s: 15.0,
            ..ChurnConfig::none()
        };
        let sched = ChurnSchedule::generate(&cfg, 4, 40_000, 0.05, 3);
        let mut checked = 0;
        for node in 0..4 {
            for &(s, e) in &sched.down[node] {
                assert_eq!(sched.wake_at(node, s), Some(e));
                assert_eq!(sched.wake_at(node, (s + e) / 2), Some(e));
                assert_eq!(sched.wake_at(node, e), None);
                assert!(sched.down_during(node, s, s));
                checked += 1;
            }
        }
        assert!(checked > 0, "schedule must actually contain outages");
    }
}
