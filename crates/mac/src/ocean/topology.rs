//! Ocean deployment topologies and the geometric medium backing them.
//!
//! The dense `gains[i][j]` matrix of [`crate::netsim`] is O(n²) in both
//! construction (two sample-level link renders per pair) and memory — a
//! non-starter for 10 000 nodes. This module replaces it with:
//!
//! - [`RangeGain`]: a log-distance power-law fit `g(r) = a·r^-α`
//!   calibrated against the *real* channel model — two
//!   [`crate::budget::gain_matrix`] soundings at 5 m and 40 m in the lake
//!   environment pin `a` and `α`, so every pairwise gain the ocean
//!   simulator uses extrapolates the same physics the dive-site
//!   experiments render at sample level. The fit is invertible, which the
//!   PHY layer uses to map an SINR back to an equivalent clean range for
//!   the PER table.
//! - [`GeoMedium`]: per-node neighbor lists from a uniform spatial hash,
//!   truncated at the sensitivity cutoff where sensed power falls below
//!   1/8 of the noise floor (far below the carrier-sense margin, so
//!   truncation never flips a busy decision). Memory is O(n·k) for k
//!   audible neighbors, not O(n²).
//! - [`OceanTopology`]: the deployment families the dtn-unetstack design
//!   doc names — a regular sensor **grid**, clustered sensor **swarms**,
//!   and a dive-resort **fleet** of boats with divers around each.
//!
//! Everything is deterministic in the topology seed.

use crate::budget::{gain_matrix, noise_floor};
use aqua_channel::device::Device;
use aqua_channel::environments::{Environment, Site};
use aqua_channel::geometry::Pos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use super::event::Medium;

/// Band power of a transmitting node (target_rms², the convention the
/// fig19 experiment uses to scale gain matrices into sensed power).
pub const TX_POWER: f64 = 0.04;

/// Log-distance power-law fit of the in-band link gain, calibrated from
/// two sample-level channel soundings: `gain(r) = a · r^-alpha`.
#[derive(Debug, Clone, Copy)]
pub struct RangeGain {
    a: f64,
    alpha: f64,
    /// In-band ambient noise power of the calibration environment.
    pub noise: f64,
}

impl RangeGain {
    /// Calibrates against the lake preset (the environment behind the
    /// fig12 PER knots) at 2 m device depth: link-budget soundings at 5 m
    /// and 40 m determine the power-law exponent and anchor.
    pub fn lake() -> Self {
        Self::calibrated(&Environment::preset(Site::Lake), 2.0, 5.0, 40.0)
    }

    /// Fits `a`/`alpha` from two [`gain_matrix`] soundings at ranges `r1 <
    /// r2` (meters) and `depth` m in `env`.
    pub fn calibrated(env: &Environment, depth: f64, r1: f64, r2: f64) -> Self {
        assert!(r1 > 0.0 && r2 > r1);
        let positions = [
            Pos::new(0.0, 0.0, depth),
            Pos::new(r1, 0.0, depth),
            Pos::new(r2, 0.0, depth),
        ];
        let devices = [
            Device::default_rig(1),
            Device::default_rig(2),
            Device::default_rig(3),
        ];
        let g = gain_matrix(env, &positions, &devices);
        let (g1, g2) = (g[0][1], g[0][2]);
        assert!(g1 > g2 && g2 > 0.0, "gain must fall with range: {g1} {g2}");
        let alpha = (g1 / g2).ln() / (r2 / r1).ln();
        let a = g1 * r1.powf(alpha);
        Self {
            a,
            alpha,
            noise: noise_floor(env, 1)[0],
        }
    }

    /// Linear power gain at range `r` meters (clamped below 1 m — the fit
    /// is a far-field model).
    pub fn gain(&self, r: f64) -> f64 {
        self.a * r.max(1.0).powf(-self.alpha)
    }

    /// Sensed power at range `r` for a [`TX_POWER`] transmitter.
    pub fn sensed(&self, r: f64) -> f64 {
        self.gain(r) * TX_POWER
    }

    /// Inverse of [`RangeGain::sensed`]: the range at which a transmitter
    /// is sensed at power `p` (clamped to ≥ 1 m).
    pub fn range_for_sensed(&self, p: f64) -> f64 {
        assert!(p > 0.0);
        (self.a * TX_POWER / p).powf(1.0 / self.alpha).max(1.0)
    }

    /// Range beyond which sensed power drops below `noise / 8` — the
    /// medium's sensitivity cutoff for neighbor lists.
    pub fn hearing_radius(&self) -> f64 {
        self.range_for_sensed(self.noise / 8.0)
    }
}

/// A named node layout family for the `repro ocean` experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// Regular sensor grid, 20 m pitch with ±2 m placement jitter.
    Grid,
    /// Clustered sensor swarm: ~50-node clusts scattered over the area.
    Swarm,
    /// Dive-resort fleet: boats every 200 m along a coastline, ~10
    /// divers within 30 m of each boat.
    Fleet,
}

impl TopologyKind {
    /// CLI/table name.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Grid => "grid",
            TopologyKind::Swarm => "swarm",
            TopologyKind::Fleet => "fleet",
        }
    }
}

/// Node positions plus each node's message destination (its nearest
/// audible neighbor; `u32::MAX` marks an isolated broadcast-only node).
#[derive(Debug, Clone)]
pub struct OceanTopology {
    /// Node positions (2 m nominal device depth).
    pub positions: Vec<Pos>,
    /// Destination node per transmitter (`u32::MAX` when isolated).
    pub dest: Vec<u32>,
}

/// Sentinel destination for nodes with no audible neighbor.
pub const NO_DEST: u32 = u32::MAX;

impl OceanTopology {
    /// Generates `n` node positions of the given family, deterministically
    /// in `seed`, and assigns nearest-neighbor destinations using the
    /// medium geometry in `rg`.
    pub fn generate(kind: TopologyKind, n: usize, seed: u64, rg: &RangeGain) -> Self {
        assert!(n >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = 2.0;
        let mut positions = Vec::with_capacity(n);
        match kind {
            TopologyKind::Grid => {
                let cols = (n as f64).sqrt().ceil() as usize;
                for i in 0..n {
                    let (row, col) = (i / cols, i % cols);
                    let jx: f64 = rng.gen_range(-2.0..=2.0);
                    let jy: f64 = rng.gen_range(-2.0..=2.0);
                    positions.push(Pos::new(
                        col as f64 * 20.0 + jx,
                        row as f64 * 20.0 + jy,
                        depth,
                    ));
                }
            }
            TopologyKind::Swarm => {
                // ~50-node clusters over an area matching the grid's
                // density; each node uniform in a 30 m disc around its
                // cluster center.
                let clusters = n.div_ceil(50).max(1);
                let side = ((n as f64).sqrt() * 20.0).max(60.0);
                let centers: Vec<(f64, f64)> = (0..clusters)
                    .map(|_| (rng.gen_range(0.0..=side), rng.gen_range(0.0..=side)))
                    .collect();
                for i in 0..n {
                    let (cx, cy) = centers[i % clusters];
                    let r = 30.0 * rng.gen_range(0.0f64..=1.0).sqrt();
                    let th = rng.gen_range(0.0..=std::f64::consts::TAU);
                    positions.push(Pos::new(cx + r * th.cos(), cy + r * th.sin(), depth));
                }
            }
            TopologyKind::Fleet => {
                // Boats moored every 200 m along a coastline; ~10 divers
                // per boat within 30 m.
                let boats = n.div_ceil(10).max(1);
                for i in 0..n {
                    let boat = i % boats;
                    let bx = boat as f64 * 200.0;
                    let by: f64 = rng.gen_range(-20.0..=20.0);
                    let r = 30.0 * rng.gen_range(0.0f64..=1.0).sqrt();
                    let th = rng.gen_range(0.0..=std::f64::consts::TAU);
                    positions.push(Pos::new(bx + r * th.cos(), by + r * th.sin(), depth));
                }
            }
        }
        let dest = nearest_neighbors(&positions, rg.hearing_radius());
        Self { positions, dest }
    }
}

/// Spatial hash over node positions: uniform cells of `cell` meters,
/// `(cx, cy) -> node indices`.
fn build_cells(positions: &[Pos], cell: f64) -> HashMap<(i64, i64), Vec<u32>> {
    let mut cells: HashMap<(i64, i64), Vec<u32>> = HashMap::new();
    for (i, p) in positions.iter().enumerate() {
        cells.entry(cell_of(p, cell)).or_default().push(i as u32);
    }
    cells
}

fn cell_of(p: &Pos, cell: f64) -> (i64, i64) {
    ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64)
}

/// Nearest audible neighbor per node ([`NO_DEST`] when none within
/// `radius`); ties broken toward the lower node index.
fn nearest_neighbors(positions: &[Pos], radius: f64) -> Vec<u32> {
    let cells = build_cells(positions, radius);
    positions
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let (cx, cy) = cell_of(p, radius);
            let mut best = NO_DEST;
            let mut best_d = f64::INFINITY;
            for dx in -1..=1 {
                for dy in -1..=1 {
                    let Some(bucket) = cells.get(&(cx + dx, cy + dy)) else {
                        continue;
                    };
                    for &j in bucket {
                        if j as usize == i {
                            continue;
                        }
                        let d = p.distance(&positions[j as usize]);
                        if d <= radius && (d < best_d || (d == best_d && j < best)) {
                            best_d = d;
                            best = j;
                        }
                    }
                }
            }
            best
        })
        .collect()
}

/// Sparse geometric medium: per-node neighbor lists (ascending index)
/// with precomputed sensed powers from the [`RangeGain`] fit.
#[derive(Debug, Clone)]
pub struct GeoMedium {
    positions: Vec<Pos>,
    rg: RangeGain,
    /// Per node: audible neighbors in ascending index order.
    neighbors: Vec<Vec<u32>>,
    /// Per node: sensed power of the matching neighbor (same order).
    powers: Vec<Vec<f64>>,
}

impl GeoMedium {
    /// Builds neighbor lists for `positions` under the sensitivity cutoff
    /// of `rg` ([`RangeGain::hearing_radius`]).
    pub fn new(positions: Vec<Pos>, rg: RangeGain) -> Self {
        let radius = rg.hearing_radius();
        let cells = build_cells(&positions, radius);
        let n = positions.len();
        let mut neighbors = Vec::with_capacity(n);
        let mut powers = Vec::with_capacity(n);
        for (i, p) in positions.iter().enumerate() {
            let (cx, cy) = cell_of(p, radius);
            let mut near: Vec<u32> = Vec::new();
            for dx in -1..=1 {
                for dy in -1..=1 {
                    if let Some(bucket) = cells.get(&(cx + dx, cy + dy)) {
                        for &j in bucket {
                            if j as usize != i && p.distance(&positions[j as usize]) <= radius {
                                near.push(j);
                            }
                        }
                    }
                }
            }
            near.sort_unstable();
            let pw = near
                .iter()
                .map(|&j| rg.sensed(p.distance(&positions[j as usize])))
                .collect();
            neighbors.push(near);
            powers.push(pw);
        }
        Self {
            positions,
            rg,
            neighbors,
            powers,
        }
    }

    /// The range-gain fit backing this medium.
    pub fn range_gain(&self) -> &RangeGain {
        &self.rg
    }

    /// Euclidean range between two nodes, meters.
    pub fn range_m(&self, i: usize, j: usize) -> f64 {
        self.positions[i].distance(&self.positions[j])
    }

    /// One-way acoustic propagation delay between two nodes, seconds.
    pub fn prop_delay_s(&self, i: usize, j: usize) -> f64 {
        self.range_m(i, j) / super::event::SOUND_SPEED
    }

    /// Largest pairwise propagation delay that matters to the simulator:
    /// interactions are truncated at the hearing radius.
    pub fn max_prop_delay_s(&self) -> f64 {
        self.rg.hearing_radius() / super::event::SOUND_SPEED
    }

    /// Mean audible-neighbor count (reported by the ocean experiment).
    pub fn mean_degree(&self) -> f64 {
        let total: usize = self.neighbors.iter().map(Vec::len).sum();
        total as f64 / self.neighbors.len().max(1) as f64
    }
}

impl Medium for GeoMedium {
    fn nodes(&self) -> usize {
        self.positions.len()
    }
    fn noise_floor(&self, _rx: usize) -> f64 {
        self.rg.noise
    }
    fn neighbors_of(&self, rx: usize) -> &[u32] {
        &self.neighbors[rx]
    }
    fn gain(&self, tx: usize, rx: usize) -> f64 {
        match self.neighbors[rx].binary_search(&(tx as u32)) {
            Ok(k) => self.powers[rx][k],
            Err(_) => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lake_fit_is_monotone_and_invertible() {
        let rg = RangeGain::lake();
        assert!(rg.sensed(5.0) > rg.sensed(20.0));
        assert!(rg.sensed(20.0) > rg.sensed(80.0));
        let r = 17.0;
        let back = rg.range_for_sensed(rg.sensed(r));
        assert!((back - r).abs() < 1e-9, "{back}");
        assert!(rg.hearing_radius() > 5.0, "{}", rg.hearing_radius());
    }

    #[test]
    fn topologies_are_deterministic_and_sized() {
        let rg = RangeGain::lake();
        for kind in [TopologyKind::Grid, TopologyKind::Swarm, TopologyKind::Fleet] {
            let a = OceanTopology::generate(kind, 120, 9, &rg);
            let b = OceanTopology::generate(kind, 120, 9, &rg);
            assert_eq!(a.positions.len(), 120);
            for (p, q) in a.positions.iter().zip(&b.positions) {
                assert_eq!(p.x.to_bits(), q.x.to_bits());
                assert_eq!(p.y.to_bits(), q.y.to_bits());
            }
            assert_eq!(a.dest, b.dest);
            // Dense-enough layouts: nearly everyone has a destination.
            let with_dest = a.dest.iter().filter(|&&d| d != NO_DEST).count();
            assert!(with_dest * 10 >= 120 * 9, "{kind:?}: {with_dest}/120");
        }
    }

    #[test]
    fn geo_medium_neighbors_are_sorted_and_symmetric() {
        let rg = RangeGain::lake();
        let topo = OceanTopology::generate(TopologyKind::Grid, 64, 3, &rg);
        let m = GeoMedium::new(topo.positions, rg);
        for i in 0..64 {
            let ns = m.neighbors_of(i);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            assert!(!ns.contains(&(i as u32)), "self excluded");
            for &j in ns {
                assert!(
                    m.neighbors_of(j as usize).contains(&(i as u32)),
                    "symmetry {i} {j}"
                );
                assert!(m.gain(j as usize, i) > 0.0);
            }
        }
        if m.range_m(0, 63) > m.range_gain().hearing_radius() {
            assert_eq!(m.gain(0, 63), 0.0, "out-of-range pair has zero gain");
        }
    }
}
