//! Streaming statistics for ocean-scale runs: collision accounting,
//! latency histogram and delivery fairness, all with memory bounded by
//! O(nodes + concurrent packets) — never O(transmissions). A 24 h
//! 10 000-node deployment emits millions of packets; storing per-packet
//! timestamps (what [`crate::netsim::collision_stats`] consumes) is
//! exactly what the ocean simulator must not do.
//!
//! [`CollisionWindow`] replicates the batch `collision_stats` semantics
//! one packet at a time: the simulator feeds transmission starts in
//! non-decreasing time order (the event heap guarantees it), a sliding
//! window keeps only starts within one packet duration, and a packet's
//! collided flag is final once it slides out. On identical input streams
//! the fractions are **bit-identical** to the batch pass — pinned by the
//! unit tests below across the same edge cases the batch fix covers.

use std::collections::VecDeque;

/// Streaming equivalent of [`crate::netsim::collision_stats`]: packets
/// whose start times fall within one packet duration of each other — from
/// different transmitters — collide.
#[derive(Debug, Clone)]
pub struct CollisionWindow {
    dur: f64,
    /// Starts within `dur` of the newest packet: `(tx, t, collided)`.
    window: VecDeque<(u32, f64, bool)>,
    total: u64,
    collided: u64,
    per_node_sent: Vec<u64>,
    per_node_collided: Vec<u64>,
    last_t: f64,
}

impl CollisionWindow {
    /// A window for `n` nodes and the given packet duration.
    pub fn new(n: usize, packet_duration_s: f64) -> Self {
        Self {
            dur: packet_duration_s,
            window: VecDeque::new(),
            total: 0,
            collided: 0,
            per_node_sent: vec![0; n],
            per_node_collided: vec![0; n],
            last_t: f64::NEG_INFINITY,
        }
    }

    /// Feeds one transmission start. Starts must arrive in non-decreasing
    /// time order.
    pub fn push(&mut self, tx: u32, t: f64) {
        debug_assert!(t >= self.last_t, "starts must be time-ordered");
        self.last_t = t;
        // Everything at least one packet duration old can no longer
        // collide with this or any future start: retire it. (`>=`
        // mirrors the batch pass's `break` condition, which also makes a
        // zero or negative duration mean "nothing ever collides".)
        while let Some(&(ftx, ft, fc)) = self.window.front() {
            if t - ft >= self.dur {
                self.retire(ftx, fc);
                self.window.pop_front();
            } else {
                break;
            }
        }
        let mut collided = false;
        for &mut (wtx, _, ref mut wc) in self.window.iter_mut() {
            if wtx != tx {
                *wc = true;
                collided = true;
            }
        }
        self.window.push_back((tx, t, collided));
    }

    fn retire(&mut self, tx: u32, collided: bool) {
        self.total += 1;
        self.per_node_sent[tx as usize] += 1;
        if collided {
            self.collided += 1;
            self.per_node_collided[tx as usize] += 1;
        }
    }

    /// Retires everything still in flight and returns
    /// `(collision_fraction, per_node_collision_fraction)` — the same
    /// numbers the batch pass computes from the full timestamp list.
    pub fn finish(mut self) -> (f64, Vec<f64>) {
        while let Some((tx, _, c)) = self.window.pop_front() {
            self.retire(tx, c);
        }
        let frac = self.collided as f64 / self.total.max(1) as f64;
        let per: Vec<f64> = self
            .per_node_sent
            .iter()
            .zip(&self.per_node_collided)
            .map(|(&s, &c)| if s == 0 { 0.0 } else { c as f64 / s as f64 })
            .collect();
        (frac, per)
    }

    /// Packets fed so far (including those still in the window).
    pub fn pushed(&self) -> u64 {
        self.total + self.window.len() as u64
    }

    /// Current window length — the memory high-water mark driver.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

/// Fixed-size logarithmic latency histogram (bounded memory, no
/// per-packet storage). Buckets span 10 ms to 1000 s.
#[derive(Debug, Clone)]
pub struct LatencyHist {
    buckets: [u64; 64],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

const LAT_LO: f64 = 0.01;
const LAT_HI: f64 = 1000.0;

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    /// Records one latency sample (seconds).
    pub fn record(&mut self, latency_s: f64) {
        let l = latency_s.max(0.0);
        self.count += 1;
        self.sum += l;
        self.min = self.min.min(l);
        self.max = self.max.max(l);
        let pos = (l.max(LAT_LO) / LAT_LO).ln() / (LAT_HI / LAT_LO).ln();
        let b = ((pos * 64.0) as usize).min(63);
        self.buckets[b] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile: the geometric center of the bucket holding
    /// the `q`-quantile sample (resolution ~±10 %, enough for a latency
    /// table row). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let lo = LAT_LO * (LAT_HI / LAT_LO).powf(b as f64 / 64.0);
                let hi = LAT_LO * (LAT_HI / LAT_LO).powf((b as f64 + 1.0) / 64.0);
                return (lo * hi).sqrt();
            }
        }
        self.max
    }
}

impl Default for LatencyHist {
    fn default() -> Self {
        Self::new()
    }
}

/// Jain's fairness index over per-node delivered-packet counts:
/// `(Σx)² / (m·Σx²)`, 1.0 for perfectly even delivery, → 1/m when one
/// node gets everything. Empty or all-zero input is defined as 1.0.
pub fn jain_fairness(counts: &[u64]) -> f64 {
    let m = counts.len();
    if m == 0 {
        return 1.0;
    }
    let sum: f64 = counts.iter().map(|&c| c as f64).sum();
    let sq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    if sq == 0.0 {
        1.0
    } else {
        sum * sum / (m as f64 * sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::collision_stats;

    /// Feeds a tx_times schedule through the window in global time order
    /// (ties by node index — the event-heap order) and compares against
    /// the batch oracle bit-for-bit.
    fn assert_matches_batch(tx_times: &[Vec<f64>], dur: f64) {
        let mut all: Vec<(u32, f64)> = Vec::new();
        for (tx, ts) in tx_times.iter().enumerate() {
            for &t in ts {
                all.push((tx as u32, t));
            }
        }
        all.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        let mut w = CollisionWindow::new(tx_times.len(), dur);
        for &(tx, t) in &all {
            w.push(tx, t);
        }
        let (sf, sp) = w.finish();
        let (bf, bp) = collision_stats(tx_times, dur);
        assert_eq!(sf.to_bits(), bf.to_bits(), "fraction {sf} vs {bf}");
        assert_eq!(sp.len(), bp.len());
        for (a, b) in sp.iter().zip(&bp) {
            assert_eq!(a.to_bits(), b.to_bits(), "per-node {a} vs {b}");
        }
    }

    #[test]
    fn matches_batch_on_edge_cases() {
        // empty schedules
        assert_matches_batch(&[vec![], vec![]], 0.55);
        assert_matches_batch(&[], 0.55);
        // zero duration: nothing collides
        assert_matches_batch(&[vec![0.0, 0.1], vec![0.05]], 0.0);
        // single node never collides with itself
        assert_matches_batch(&[vec![0.0, 0.1, 0.2, 0.3]], 0.55);
        // simultaneous timestamps across nodes
        assert_matches_batch(&[vec![1.0, 2.0], vec![1.0], vec![1.0, 5.0]], 0.55);
        // dense overlap chain
        assert_matches_batch(&[vec![0.0, 0.5, 1.0], vec![0.25, 0.75], vec![0.4]], 0.55);
        // well separated
        assert_matches_batch(&[vec![0.0, 10.0], vec![5.0, 15.0]], 0.55);
    }

    #[test]
    fn matches_batch_on_random_schedules() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..50 {
            let n = rng.gen_range(1..5);
            let tx_times: Vec<Vec<f64>> = (0..n)
                .map(|_| {
                    let k = rng.gen_range(0..12);
                    let mut ts: Vec<f64> = (0..k).map(|_| rng.gen_range(0.0..8.0)).collect();
                    ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    ts
                })
                .collect();
            assert_matches_batch(&tx_times, 0.55);
        }
    }

    #[test]
    fn window_memory_stays_bounded() {
        let mut w = CollisionWindow::new(2, 0.55);
        for i in 0..10_000 {
            w.push((i % 2) as u32, i as f64 * 0.1);
        }
        assert!(w.window_len() <= 6, "window {}", w.window_len());
        assert_eq!(w.pushed(), 10_000);
    }

    #[test]
    fn latency_hist_quantiles_and_mean() {
        let mut h = LatencyHist::new();
        for i in 1..=100 {
            h.record(i as f64 * 0.1); // 0.1 .. 10.0 s
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 5.05).abs() < 1e-9);
        let med = h.quantile(0.5);
        assert!((4.0..6.5).contains(&med), "median bucket {med}");
        assert!(h.quantile(0.9) > med);
        assert_eq!(LatencyHist::new().quantile(0.5), 0.0);
    }

    #[test]
    fn jain_index_extremes() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0, 0]), 1.0);
        assert_eq!(jain_fairness(&[7, 7, 7, 7]), 1.0);
        let skew = jain_fairness(&[100, 0, 0, 0]);
        assert!((skew - 0.25).abs() < 1e-12);
        let mild = jain_fairness(&[3, 4, 5]);
        assert!(mild > 0.9 && mild < 1.0);
    }
}
