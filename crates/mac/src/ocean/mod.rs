//! Event-driven ocean-scale network simulation.
//!
//! The ROADMAP's north star is a simulated ocean — thousands of
//! acoustically-messaging nodes over hours of simulated time — which the
//! slot-stepped [`crate::netsim`] cannot reach (it scans every node every
//! 80 ms slot and renders every link sample-level). This module family
//! splits the problem:
//!
//! - [`event`]: the event-driven MAC core — a binary-heap event queue
//!   keyed `(slot, node)`, per-node transmission histories instead of
//!   per-slot scans, and reception windows scheduled at
//!   propagation-delay-adjusted arrival times. On dense small configs it
//!   is **bit-identical** to `netsim::simulate` (the oracle), pinned by
//!   `mac/tests/ocean_equivalence.rs`.
//! - [`topology`]: grid/swarm/fleet deployments, the calibrated
//!   log-distance range-gain fit, and the spatial-hash [`topology::GeoMedium`]
//!   with O(n·k) neighbor lists.
//! - [`per_table`]: the analytic PER-vs-range lookup interpolated from
//!   the recorded fig9/fig12 curves — the fast path for clean receptions.
//! - [`phy`]: the PER-vs-sample-level dispatch rule and the memoized
//!   sample-level probe renders for receptions with real time overlap.
//! - [`stats`]: bounded-memory streaming collision/latency/fairness
//!   accounting.
//!
//! [`run_ocean`] assembles them: the MAC state machine advances serially
//! (its decisions are causally ordered through the shared channel), while
//! completed reception windows — the expensive, independent part — are
//! batched and fanned out across an [`aqua_par::Pool`] with the same
//! parallel ≡ serial bit-identical contract as the experiment engine
//! (`mac/tests/ocean_determinism.rs`). The `repro ocean` experiment in
//! `aqua-eval` drives 10 000-node, 24 h simulated deployments through
//! this entry point. See DESIGN.md §11.

pub mod churn;
pub mod event;
pub mod per_table;
pub mod phy;
pub mod stats;
pub mod topology;

pub use churn::ChurnConfig;
pub use event::simulate_events;
pub use per_table::{Band, PerTable};
pub use topology::TopologyKind;

use crate::netsim::MacConfig;
use aqua_par::Pool;

use churn::ChurnSchedule;
use event::{EventCore, Reception, SimHooks};
use phy::PhyResolver;
use stats::{jain_fairness, CollisionWindow, LatencyHist};
use topology::{GeoMedium, OceanTopology, RangeGain, NO_DEST};

/// Configuration of one ocean deployment run.
#[derive(Debug, Clone)]
pub struct OceanConfig {
    /// Deployment layout family.
    pub kind: TopologyKind,
    /// Number of nodes.
    pub nodes: usize,
    /// Simulated duration (seconds); the run is truncated here.
    pub sim_duration_s: f64,
    /// MAC parameters (slotting, carrier sense, traffic pattern).
    pub mac: MacConfig,
    /// Modulation scheme for the PER table.
    pub band: Band,
    /// Master seed: topology, MAC RNG and per-reception PHY draws.
    pub seed: u64,
    /// Receptions buffered before a parallel resolution flush.
    pub batch: usize,
    /// Node churn model: hard failures and duty-cycle sleep
    /// ([`ChurnConfig::none`] for an always-on fleet).
    pub churn: ChurnConfig,
}

impl OceanConfig {
    /// The standard deployment traffic model: periodic sensor reports
    /// (uniform 2–8 min inter-packet gap, staggered start over 2 min),
    /// carrier sense on, endless packet supply — the run length is set by
    /// `sim_duration_s`, not a packet budget.
    pub fn deployment(kind: TopologyKind, nodes: usize, sim_duration_s: f64, seed: u64) -> Self {
        Self {
            kind,
            nodes,
            sim_duration_s,
            mac: MacConfig {
                max_packets: usize::MAX,
                initial_delay_s: (0.0, 120.0),
                inter_packet_gap_s: (120.0, 480.0),
                ..MacConfig::default()
            },
            band: Band::Adaptive,
            seed,
            batch: 1024,
            churn: ChurnConfig::none(),
        }
    }
}

/// Aggregate result of an ocean run. All statistics are streamed with
/// bounded memory; no per-packet records survive the run.
#[derive(Debug, Clone)]
pub struct OceanResult {
    /// Nodes simulated.
    pub nodes: usize,
    /// Simulated time covered (seconds).
    pub duration_s: f64,
    /// Packets transmitted.
    pub transmissions: u64,
    /// Reception windows resolved (transmissions with a destination).
    pub receptions: u64,
    /// Packets delivered to their destination.
    pub delivered: u64,
    /// `delivered / receptions` (1.0 when nothing was addressed).
    pub delivery_rate: f64,
    /// Receptions lost because the destination was itself transmitting.
    pub dest_busy_losses: u64,
    /// Receptions lost because the destination was failed or asleep for
    /// some part of the arrival window.
    pub churn_losses: u64,
    /// Fraction of the run the average node spent unavailable.
    pub downtime_frac: f64,
    /// Receptions that required the sample-level overlap path.
    pub overlap_receptions: u64,
    /// Fraction of transmissions colliding (same metric as fig19).
    pub collision_fraction: f64,
    /// Mean end-to-end delivered-packet latency (seconds).
    pub latency_mean_s: f64,
    /// Median delivered-packet latency (seconds, histogram resolution).
    pub latency_p50_s: f64,
    /// 90th-percentile delivered-packet latency (seconds).
    pub latency_p90_s: f64,
    /// Jain fairness index over per-sender delivered counts.
    pub fairness: f64,
    /// Heap events processed by the core.
    pub events: u64,
    /// Peak event-heap length (memory-bound witness).
    pub peak_heap: usize,
    /// Peak collision-window length (memory-bound witness).
    pub peak_collision_window: usize,
    /// Sample-level probe renders paid over the whole run.
    pub probe_renders: usize,
    /// Mean audible-neighbor count of the topology.
    pub mean_degree: f64,
}

/// Scenario hooks wiring the event core to topology, PHY and streaming
/// stats. Receptions are buffered and resolved in parallel batches; the
/// fold back into the stats runs in item order, so results are identical
/// for every pool size.
struct OceanHooks<'a> {
    topo: &'a OceanTopology,
    medium: &'a GeoMedium,
    phy: &'a PhyResolver,
    pool: &'a Pool,
    churn: &'a ChurnSchedule,
    slot_s: f64,
    packet_duration_s: f64,
    batch: usize,
    pending: Vec<Reception>,
    collisions: CollisionWindow,
    latency: LatencyHist,
    delivered_per_node: Vec<u64>,
    transmissions: u64,
    receptions: u64,
    delivered: u64,
    dest_busy_losses: u64,
    churn_losses: u64,
    overlap_receptions: u64,
    peak_window: usize,
}

impl<'a> OceanHooks<'a> {
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        let phy = self.phy;
        let outcomes = self.pool.par_map_slice(&pending, |rx| phy.resolve(rx));
        for out in outcomes {
            self.receptions += 1;
            if out.dest_busy {
                self.dest_busy_losses += 1;
            }
            if out.overlap {
                self.overlap_receptions += 1;
            }
            if out.delivered {
                self.delivered += 1;
                self.delivered_per_node[out.tx as usize] += 1;
                self.latency.record(out.latency_s);
            }
        }
    }
}

impl SimHooks for OceanHooks<'_> {
    fn dest(&mut self, node: usize) -> Option<u32> {
        match self.topo.dest[node] {
            NO_DEST => None,
            d => Some(d),
        }
    }
    fn prop_delay_s(&self, tx: usize, rx: usize) -> f64 {
        self.medium.prop_delay_s(tx, rx)
    }
    fn max_prop_delay_s(&self) -> f64 {
        self.medium.max_prop_delay_s()
    }
    fn on_transmit(&mut self, node: usize, t_s: f64, _access_delay_s: f64) {
        self.transmissions += 1;
        self.collisions.push(node as u32, t_s);
        self.peak_window = self.peak_window.max(self.collisions.window_len());
    }
    fn on_reception(&mut self, rx: Reception) {
        // A destination that is failed or asleep for any part of the
        // arrival window hears nothing: the reception is accounted (it
        // was addressed traffic) but lost before the PHY ever runs.
        let a = (rx.arrival_s / self.slot_s).floor().max(0.0) as u64;
        let b = ((rx.arrival_s + self.packet_duration_s) / self.slot_s).ceil() as u64;
        if self.churn.down_during(rx.dest as usize, a, b) {
            self.receptions += 1;
            self.churn_losses += 1;
            return;
        }
        self.pending.push(rx);
        if self.pending.len() >= self.batch {
            self.flush();
        }
    }
    fn wake_at(&self, node: usize, slot: u64) -> Option<u64> {
        self.churn.wake_at(node, slot)
    }
}

/// Runs one ocean deployment on the given pool. Deterministic in
/// `cfg.seed`; bit-identical for every pool size
/// (`mac/tests/ocean_determinism.rs`).
pub fn run_ocean(cfg: &OceanConfig, pool: &Pool) -> OceanResult {
    let rg = RangeGain::lake();
    let topo = OceanTopology::generate(cfg.kind, cfg.nodes, cfg.seed, &rg);
    let medium = GeoMedium::new(topo.positions.clone(), rg);
    let phy = PhyResolver::new(cfg.band, rg, cfg.mac.packet_duration_s, cfg.seed);
    let max_slots = (cfg.sim_duration_s / cfg.mac.slot_s).ceil() as u64;
    // The churn stream is salted away from the MAC/PHY seed so outage
    // timing and traffic randomness never alias.
    let churn = ChurnSchedule::generate(
        &cfg.churn,
        cfg.nodes,
        max_slots,
        cfg.mac.slot_s,
        cfg.seed ^ 0xC08A_12D5,
    );
    let mut hooks = OceanHooks {
        topo: &topo,
        medium: &medium,
        phy: &phy,
        pool,
        churn: &churn,
        slot_s: cfg.mac.slot_s,
        packet_duration_s: cfg.mac.packet_duration_s,
        batch: cfg.batch.max(1),
        pending: Vec::new(),
        collisions: CollisionWindow::new(cfg.nodes, cfg.mac.packet_duration_s),
        latency: LatencyHist::new(),
        delivered_per_node: vec![0; cfg.nodes],
        transmissions: 0,
        receptions: 0,
        delivered: 0,
        dest_busy_losses: 0,
        churn_losses: 0,
        overlap_receptions: 0,
        peak_window: 0,
    };
    let core = EventCore::new(&cfg.mac, &medium, &mut hooks, cfg.seed).run(max_slots);
    hooks.flush();
    let (collision_fraction, _per_node) = hooks.collisions.finish();
    let delivery_rate = if hooks.receptions == 0 {
        1.0
    } else {
        hooks.delivered as f64 / hooks.receptions as f64
    };
    // Fairness over senders that had a destination at all.
    let counted: Vec<u64> = (0..cfg.nodes)
        .filter(|&i| topo.dest[i] != NO_DEST)
        .map(|i| hooks.delivered_per_node[i])
        .collect();
    OceanResult {
        nodes: cfg.nodes,
        duration_s: core.duration_s,
        transmissions: hooks.transmissions,
        receptions: hooks.receptions,
        delivered: hooks.delivered,
        delivery_rate,
        dest_busy_losses: hooks.dest_busy_losses,
        churn_losses: hooks.churn_losses,
        downtime_frac: churn.mean_downtime_frac(),
        overlap_receptions: hooks.overlap_receptions,
        collision_fraction,
        latency_mean_s: hooks.latency.mean(),
        latency_p50_s: hooks.latency.quantile(0.5),
        latency_p90_s: hooks.latency.quantile(0.9),
        fairness: jain_fairness(&counted),
        events: core.events,
        peak_heap: core.peak_heap,
        peak_collision_window: hooks.peak_window,
        probe_renders: phy.rendered_buckets(),
        mean_degree: medium.mean_degree(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_ocean_run_produces_traffic() {
        let cfg = OceanConfig::deployment(TopologyKind::Grid, 36, 900.0, 7);
        let r = run_ocean(&cfg, &Pool::new(1));
        assert_eq!(r.nodes, 36);
        assert!((r.duration_s - 900.0).abs() < 0.1, "{}", r.duration_s);
        assert!(r.transmissions > 36, "every node reports: {r:?}");
        assert!(r.receptions > 0 && r.delivered > 0, "{r:?}");
        assert!(r.delivery_rate > 0.5, "sparse CS network delivers: {r:?}");
        assert!((0.0..=1.0).contains(&r.fairness));
        assert!(r.peak_heap <= 36 + r.receptions as usize);
    }

    #[test]
    fn churned_fleet_loses_traffic_to_outages() {
        let clean = OceanConfig::deployment(TopologyKind::Grid, 36, 1800.0, 7);
        let mut churned = clean.clone();
        churned.churn = ChurnConfig {
            mtbf_s: 300.0,
            mttr_s: 120.0,
            duty_cycle: 0.7,
            duty_period_s: 60.0,
        };
        let a = run_ocean(&clean, &Pool::new(1));
        let b = run_ocean(&churned, &Pool::new(1));
        assert_eq!(a.churn_losses, 0);
        assert_eq!(a.downtime_frac, 0.0);
        assert!(b.downtime_frac > 0.1, "outages scheduled: {b:?}");
        assert!(
            b.churn_losses > 0,
            "asleep destinations lose packets: {b:?}"
        );
        assert!(
            b.transmissions < a.transmissions,
            "sleeping senders transmit less: {} vs {}",
            b.transmissions,
            a.transmissions
        );
        assert!(b.delivered > 0, "the fleet still functions: {b:?}");
        // Reruns of the churned config are exactly reproducible.
        let b2 = run_ocean(&churned, &Pool::new(1));
        assert_eq!(b.transmissions, b2.transmissions);
        assert_eq!(b.churn_losses, b2.churn_losses);
        assert_eq!(b.delivered, b2.delivered);
    }

    #[test]
    fn seeds_change_results_but_reruns_do_not() {
        let cfg = OceanConfig::deployment(TopologyKind::Swarm, 30, 600.0, 3);
        let a = run_ocean(&cfg, &Pool::new(1));
        let b = run_ocean(&cfg, &Pool::new(1));
        assert_eq!(a.transmissions, b.transmissions);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(
            a.collision_fraction.to_bits(),
            b.collision_fraction.to_bits()
        );
        let other = run_ocean(
            &OceanConfig {
                seed: 4,
                ..cfg.clone()
            },
            &Pool::new(1),
        );
        assert_ne!(
            (a.transmissions, a.delivered),
            (other.transmissions, other.delivered)
        );
    }
}
