//! Event-driven core of the ocean-scale simulator.
//!
//! [`crate::netsim::simulate`] steps *every node through every 80 ms slot*
//! and recomputes every node's sensed energy per slot — O(slots × n²),
//! fine for the paper's 2–3 transmitter dive site, hopeless for a
//! simulated ocean. This module re-expresses the **same state machine** as
//! events on a binary heap: a node is only touched at the slots where the
//! slot-stepped simulator would actually *change its state or draw from
//! the RNG* (wait expiry, backoff ticks, transmission end), and sensed
//! energy is answered from per-node transmission-interval histories
//! instead of a global per-slot scan.
//!
//! **Oracle equivalence.** On the dense gain-matrix inputs of
//! [`crate::netsim::simulate`], [`simulate_events`] is **bit-identical** to
//! the slot-stepped oracle: same `tx_times`, same collision stats, same
//! `duration_s`. That holds because
//!
//! - the event heap is keyed `(slot, node, kind)`, so decisions are made
//!   in exactly the oracle's slot-major, node-index-minor order, and the
//!   single shared `StdRng` is therefore consumed in the same sequence;
//! - a transmission started at slot `s` with end slot `u` is audible at
//!   slots `t` with `s < t < u` — the oracle's start-of-slot snapshot
//!   semantics (the starting slot itself and the end slot are silent);
//! - sensed power is accumulated as `noise + Σ gains` over transmitter
//!   indices in ascending order, the oracle's exact float summation order;
//! - a state set at slot `t` is first acted on at slot `max(when, t+1)`,
//!   matching the oracle's examine-next-slot behavior.
//!
//! The equivalence is pinned by the property suite in
//! `mac/tests/ocean_equivalence.rs`.
//!
//! On top of the MAC state machine the core supports the ocean extensions
//! through [`SimHooks`]: per-node destinations, propagation-delay-adjusted
//! reception windows (scheduled as extra heap events after the packet has
//! fully arrived), and interference capture for the PHY dispatch layer
//! ([`crate::ocean::phy`]). In oracle mode the hooks are inert and the
//! extensions vanish.

use crate::netsim::{collision_stats, MacConfig, MacResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Sound speed used for propagation-delay-adjusted arrival times (m/s).
pub const SOUND_SPEED: f64 = 1500.0;

/// How a receiver hears the rest of the network.
///
/// The dense oracle mode wraps the full gain matrix; the ocean mode backs
/// this with spatial-hash neighbor lists and an analytic range-gain fit.
pub trait Medium {
    /// Number of nodes.
    fn nodes(&self) -> usize;
    /// In-band ambient noise power at receiver `rx`.
    fn noise_floor(&self, rx: usize) -> f64;
    /// Candidate transmitters audible at `rx`, in strictly ascending node
    /// index, excluding `rx` itself. Sensed power is accumulated in this
    /// order, which the oracle equivalence relies on.
    fn neighbors_of(&self, rx: usize) -> &[u32];
    /// Sensed linear power at `rx` while `tx` transmits (transmit power
    /// already folded in).
    fn gain(&self, tx: usize, rx: usize) -> f64;
}

/// Dense-matrix medium: the exact inputs of [`crate::netsim::simulate`].
#[derive(Debug, Clone)]
pub struct DenseMedium {
    gains: Vec<Vec<f64>>,
    noise: Vec<f64>,
    neighbors: Vec<Vec<u32>>,
}

impl DenseMedium {
    /// Wraps `gains[i][j]` (linear power gain from transmitter `i` to node
    /// `j`, diagonal unused) and per-node noise floors.
    pub fn new(gains: Vec<Vec<f64>>, noise: Vec<f64>) -> Self {
        let n = gains.len();
        assert!(n >= 1 && noise.len() == n);
        let neighbors = (0..n)
            .map(|i| (0..n as u32).filter(|&j| j as usize != i).collect())
            .collect();
        Self {
            gains,
            noise,
            neighbors,
        }
    }
}

impl Medium for DenseMedium {
    fn nodes(&self) -> usize {
        self.gains.len()
    }
    fn noise_floor(&self, rx: usize) -> f64 {
        self.noise[rx]
    }
    fn neighbors_of(&self, rx: usize) -> &[u32] {
        &self.neighbors[rx]
    }
    fn gain(&self, tx: usize, rx: usize) -> f64 {
        self.gains[tx][rx]
    }
}

/// One interfering transmission overlapping a reception window.
#[derive(Debug, Clone, Copy)]
pub struct Interferer {
    /// Interfering transmitter.
    pub node: u32,
    /// Sensed linear power of the interferer at the destination.
    pub power: f64,
    /// Length of the overlap with the reception window (seconds).
    pub overlap_s: f64,
}

/// A completed reception window at a destination, emitted once the packet
/// plus its propagation delay has fully arrived.
#[derive(Debug, Clone)]
pub struct Reception {
    /// Transmitting node.
    pub tx: u32,
    /// Destination node.
    pub dest: u32,
    /// MAC-level transmission start time (seconds).
    pub start_s: f64,
    /// First-sample arrival time at the destination (seconds).
    pub arrival_s: f64,
    /// MAC access delay the packet paid before its transmission started
    /// (carrier-sense backoff; 0 without carrier sense).
    pub access_delay_s: f64,
    /// Whether the destination was itself transmitting during the window
    /// (half-duplex loss).
    pub dest_busy: bool,
    /// Transmissions from other nodes overlapping the window at the
    /// destination, ascending node index.
    pub interferers: Vec<Interferer>,
}

/// Scenario hooks layered over the MAC state machine. The oracle mode
/// uses the inert defaults; the ocean mode supplies destinations,
/// propagation delays and stats sinks.
pub trait SimHooks {
    /// Destination node for the packet `node` starts transmitting *now*
    /// (`None`: broadcast-only, no reception tracking — the oracle mode).
    /// Called exactly once per transmission, immediately after
    /// [`SimHooks::on_transmit`]; the answer is captured into the resolve
    /// event, so a relay layer may choose a different destination per
    /// packet. Takes `&mut self` for exactly that reason — static
    /// implementations simply ignore the mutability.
    fn dest(&mut self, node: usize) -> Option<u32> {
        let _ = node;
        None
    }
    /// One-way propagation delay between two nodes (seconds).
    fn prop_delay_s(&self, tx: usize, rx: usize) -> f64 {
        let _ = (tx, rx);
        0.0
    }
    /// Upper bound on [`SimHooks::prop_delay_s`] over pairs that can
    /// interact (sizes the history prune horizon).
    fn max_prop_delay_s(&self) -> f64 {
        0.0
    }
    /// A packet transmission started at `t_s` after `access_delay_s` of
    /// carrier-sense backoff.
    fn on_transmit(&mut self, node: usize, t_s: f64, access_delay_s: f64);
    /// A reception window closed at the destination.
    fn on_reception(&mut self, rx: Reception) {
        let _ = rx;
    }
    /// If `node` is unavailable (failed or duty-cycle asleep) at `slot`,
    /// the slot at which it next becomes available; `None` when the node
    /// is up. A state event for an unavailable node is *deferred* to the
    /// wake slot — no node state mutates and no RNG is drawn — so an
    /// always-`None` implementation is bit-identical to not having the
    /// hook at all (the oracle-equivalence contract).
    fn wake_at(&self, node: usize, slot: u64) -> Option<u64> {
        let _ = (node, slot);
        None
    }
}

/// Aggregate facts about one event-driven run.
#[derive(Debug, Clone, Copy)]
pub struct CoreStats {
    /// Total simulated time, matching the oracle's `duration_s`.
    pub duration_s: f64,
    /// Heap events processed.
    pub events: u64,
    /// Peak event-heap length (memory-bound witness).
    pub peak_heap: usize,
}

#[derive(Debug, Clone, Copy)]
enum NState {
    Waiting { when: u64 },
    Backoff { rem: u64 },
    Transmitting { until: u64 },
    Done,
}

struct NodeCtx {
    state: NState,
    sent: usize,
    /// Slot at which the current wait was meant to end (access-delay base).
    intended: u64,
    /// Recent transmissions as `(start_slot, until_slot)`, oldest first.
    /// Disjoint and ascending; pruned to the reception-window horizon.
    history: VecDeque<(u64, u64)>,
}

const KIND_STATE: u8 = 0;
const KIND_RESOLVE: u8 = 1;

/// Heap event. Ordering is `(slot, node, kind, seq)` — slot-major and
/// node-index-minor inside a slot, the oracle's processing order.
#[derive(Debug, Clone, Copy)]
struct Ev {
    slot: u64,
    node: u32,
    kind: u8,
    seq: u64,
    /// Resolve payload: transmission start slot.
    start_slot: u64,
    /// Resolve payload: destination captured at transmission start.
    dest: u32,
    /// Resolve payload: access delay of that transmission (seconds).
    access_s: f64,
}

impl Ev {
    fn key(&self) -> (u64, u32, u8, u64) {
        (self.slot, self.node, self.kind, self.seq)
    }
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// The event-driven MAC core, generic over medium and scenario hooks.
pub struct EventCore<'a, M: Medium, H: SimHooks> {
    cfg: &'a MacConfig,
    medium: &'a M,
    hooks: &'a mut H,
    rng: StdRng,
    nodes: Vec<NodeCtx>,
    heap: BinaryHeap<Reverse<Ev>>,
    packet_slots: u64,
    /// History entries with `until_slot < now - prune_h` can no longer
    /// overlap any pending reception window and are dropped.
    prune_h: u64,
    seq: u64,
    events: u64,
    peak_heap: usize,
}

impl<'a, M: Medium, H: SimHooks> EventCore<'a, M, H> {
    /// Builds the core and seeds the initial-delay events (consuming the
    /// same leading RNG draws, in node order, as the oracle).
    pub fn new(cfg: &'a MacConfig, medium: &'a M, hooks: &'a mut H, seed: u64) -> Self {
        let n = medium.nodes();
        assert!(n >= 1, "simulation needs at least one node");
        let mut rng = StdRng::seed_from_u64(seed);
        let packet_slots = (cfg.packet_duration_s / cfg.slot_s).ceil() as u64;
        // Horizon: a pending reception window reaches back at most one
        // packet duration plus two propagation delays (tx→dest and
        // interferer→dest) from the current slot, with slack for the
        // ceil-quantized resolve slot.
        let prune_h = packet_slots
            + 3
            + ((cfg.packet_duration_s + 2.0 * hooks.max_prop_delay_s()) / cfg.slot_s).ceil() as u64;
        let mut heap = BinaryHeap::new();
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let when = to_slots(cfg.initial_delay_s, cfg.slot_s, &mut rng);
            nodes.push(NodeCtx {
                state: NState::Waiting { when },
                sent: 0,
                intended: when,
                history: VecDeque::new(),
            });
            heap.push(Reverse(Ev {
                slot: when,
                node: i as u32,
                kind: KIND_STATE,
                seq: 0,
                start_slot: 0,
                dest: 0,
                access_s: 0.0,
            }));
        }
        let peak_heap = heap.len();
        Self {
            cfg,
            medium,
            hooks,
            rng,
            nodes,
            heap,
            packet_slots,
            prune_h,
            seq: 0,
            events: 0,
            peak_heap,
        }
    }

    /// Runs to completion or to the `max_slots` horizon (the oracle's
    /// safety cap; the ocean mode's simulated duration). Reception windows
    /// already in flight at the horizon are still resolved against the
    /// frozen transmission histories.
    pub fn run(mut self, max_slots: u64) -> CoreStats {
        let mut last_slot = 0u64;
        let mut capped = false;
        loop {
            let slot = match self.heap.peek() {
                Some(Reverse(ev)) => ev.slot,
                None => break,
            };
            if slot >= max_slots {
                capped = true;
                break;
            }
            let Reverse(ev) = self.heap.pop().expect("peeked event");
            self.events += 1;
            last_slot = ev.slot;
            match ev.kind {
                KIND_STATE => self.process_state(ev.slot, ev.node as usize),
                _ => self.process_resolve(
                    ev.node as usize,
                    ev.dest as usize,
                    ev.start_slot,
                    ev.access_s,
                ),
            }
            self.peak_heap = self.peak_heap.max(self.heap.len());
        }
        if capped {
            // MAC activity stops at the horizon, but packets fully
            // transmitted before it still complete their flight.
            while let Some(Reverse(ev)) = self.heap.pop() {
                if ev.kind == KIND_RESOLVE {
                    self.events += 1;
                    self.process_resolve(
                        ev.node as usize,
                        ev.dest as usize,
                        ev.start_slot,
                        ev.access_s,
                    );
                }
            }
        }
        let duration_s = if capped {
            max_slots as f64 * self.cfg.slot_s
        } else {
            (last_slot + 1) as f64 * self.cfg.slot_s
        };
        CoreStats {
            duration_s,
            events: self.events,
            peak_heap: self.peak_heap,
        }
    }

    fn push_state(&mut self, slot: u64, node: usize) {
        self.heap.push(Reverse(Ev {
            slot,
            node: node as u32,
            kind: KIND_STATE,
            seq: 0,
            start_slot: 0,
            dest: 0,
            access_s: 0.0,
        }));
    }

    /// Was `node` audible at slot `t`? True iff it has a transmission with
    /// `start < t < until` — the oracle's start-of-slot snapshot rule.
    fn active_at(&self, node: usize, t: u64) -> bool {
        for &(s, u) in self.nodes[node].history.iter().rev() {
            if s < t {
                return t < u;
            }
        }
        false
    }

    /// The oracle's sensed-energy test: noise plus the gains of active
    /// neighbors accumulated in ascending node index, against the margin.
    fn busy(&self, node: usize, t: u64) -> bool {
        let noise = self.medium.noise_floor(node);
        let mut p = noise;
        for &j in self.medium.neighbors_of(node) {
            let j = j as usize;
            if self.active_at(j, t) {
                p += self.medium.gain(j, node);
            }
        }
        p > noise * self.cfg.threshold_margin
    }

    fn process_state(&mut self, t: u64, i: usize) {
        // A churned-out node sleeps through its event: defer to the wake
        // slot untouched (no state change, no RNG draw), so a no-churn
        // hook leaves the trajectory bit-identical.
        if let Some(wake) = self.hooks.wake_at(i, t) {
            self.push_state(wake.max(t + 1), i);
            return;
        }
        match self.nodes[i].state {
            NState::Waiting { when } => {
                debug_assert!(t >= when);
                let busy = self.busy(i, t);
                if self.cfg.carrier_sense && busy {
                    let packets: u32 = self
                        .rng
                        .gen_range(self.cfg.cs_backoff_packets.0..=self.cfg.cs_backoff_packets.1);
                    self.nodes[i].state = NState::Backoff {
                        rem: packets as u64 * self.packet_slots,
                    };
                    self.push_state(t + 1, i);
                } else {
                    self.start_tx(i, t);
                }
            }
            NState::Backoff { rem } => {
                let busy = self.busy(i, t);
                let mut rem = rem.saturating_sub(1);
                if busy && rem < self.packet_slots {
                    rem += self.packet_slots;
                }
                if rem == 0 {
                    if busy {
                        rem = self.packet_slots;
                    } else {
                        self.start_tx(i, t);
                        return;
                    }
                }
                self.nodes[i].state = NState::Backoff { rem };
                self.push_state(t + 1, i);
            }
            NState::Transmitting { until } => {
                debug_assert!(t >= until);
                if self.nodes[i].sent >= self.cfg.max_packets {
                    self.nodes[i].state = NState::Done;
                } else {
                    let when =
                        t + to_slots(self.cfg.inter_packet_gap_s, self.cfg.slot_s, &mut self.rng);
                    self.nodes[i].state = NState::Waiting { when };
                    self.nodes[i].intended = when;
                    self.push_state(when.max(t + 1), i);
                }
            }
            NState::Done => unreachable!("Done nodes schedule no events"),
        }
    }

    fn start_tx(&mut self, i: usize, t: u64) {
        let t_s = t as f64 * self.cfg.slot_s;
        let access_s = (t - self.nodes[i].intended) as f64 * self.cfg.slot_s;
        self.hooks.on_transmit(i, t_s, access_s);
        self.nodes[i].sent += 1;
        let until = t + self.packet_slots;
        self.nodes[i].state = NState::Transmitting { until };
        self.push_state(until.max(t + 1), i);
        // Record the audible interval and prune entries no pending
        // reception window can reach.
        self.nodes[i].history.push_back((t, until));
        let horizon = t.saturating_sub(self.prune_h);
        while self.nodes[i].history.len() > 1 {
            match self.nodes[i].history.front() {
                Some(&(_, u)) if u < horizon => {
                    self.nodes[i].history.pop_front();
                }
                _ => break,
            }
        }
        // Schedule the reception resolve after the packet has fully
        // arrived at the destination (propagation-delay-adjusted).
        if let Some(d) = self.hooks.dest(i) {
            if d as usize != i {
                let prop = self.hooks.prop_delay_s(i, d as usize);
                let window_end = t_s + prop + self.cfg.packet_duration_s;
                let resolve_slot = (window_end / self.cfg.slot_s).ceil() as u64 + 1;
                self.seq += 1;
                self.heap.push(Reverse(Ev {
                    slot: resolve_slot,
                    node: i as u32,
                    kind: KIND_RESOLVE,
                    seq: self.seq,
                    start_slot: t,
                    dest: d,
                    access_s,
                }));
            }
        }
    }

    /// Closes the reception window of `i`'s transmission started at
    /// `start_slot` toward the destination `d` captured at transmission
    /// start: captures half-duplex state and every overlapping interferer
    /// at the destination, then hands off to the hooks.
    fn process_resolve(&mut self, i: usize, d: usize, start_slot: u64, access_s: f64) {
        let dur = self.cfg.packet_duration_s;
        let start_s = start_slot as f64 * self.cfg.slot_s;
        let prop = self.hooks.prop_delay_s(i, d);
        let (a, b) = (start_s + prop, start_s + prop + dur);
        // Half-duplex: the destination cannot receive while transmitting.
        let dest_busy = self.nodes[d].history.iter().any(|&(s, _)| {
            let s_s = s as f64 * self.cfg.slot_s;
            s_s < b && a < s_s + dur
        });
        let mut interferers = Vec::new();
        for &j in self.medium.neighbors_of(d) {
            let j = j as usize;
            if j == i {
                continue;
            }
            let pd = self.hooks.prop_delay_s(j, d);
            let mut power = 0.0;
            let mut overlap = 0.0f64;
            for &(s, _) in self.nodes[j].history.iter() {
                let aj = s as f64 * self.cfg.slot_s + pd;
                let bj = aj + dur;
                if aj < b && a < bj {
                    power = self.medium.gain(j, d);
                    overlap += b.min(bj) - a.max(aj);
                }
            }
            if power > 0.0 && overlap > 0.0 {
                interferers.push(Interferer {
                    node: j as u32,
                    power,
                    overlap_s: overlap.min(dur),
                });
            }
        }
        self.hooks.on_reception(Reception {
            tx: i as u32,
            dest: d as u32,
            start_s,
            arrival_s: a,
            access_delay_s: access_s,
            dest_busy,
            interferers,
        });
    }
}

/// The oracle's `to_slots`: a uniform draw in seconds, rounded up to whole
/// slots. Bit-for-bit the same draw and conversion as the slot-stepped
/// simulator.
fn to_slots(range: (f64, f64), slot_s: f64, rng: &mut StdRng) -> u64 {
    let s: f64 = rng.gen_range(range.0..=range.1);
    (s / slot_s).ceil() as u64
}

/// Inert hooks for the oracle mode: collect transmission start times only.
struct OracleHooks {
    tx_times: Vec<Vec<f64>>,
}

impl SimHooks for OracleHooks {
    fn on_transmit(&mut self, node: usize, t_s: f64, _access_delay_s: f64) {
        self.tx_times[node].push(t_s);
    }
}

/// Event-driven drop-in for [`crate::netsim::simulate`]: same inputs, same
/// outputs, bit for bit — but O(events) instead of O(slots × n²).
///
/// The oracle's 1 M-slot safety cap is reproduced so capped runs truncate
/// identically. Pinned by the `mac/tests/ocean_equivalence.rs` property
/// suite.
pub fn simulate_events(
    cfg: &MacConfig,
    gains: &[Vec<f64>],
    noise_floor: &[f64],
    seed: u64,
) -> MacResult {
    let medium = DenseMedium::new(gains.to_vec(), noise_floor.to_vec());
    let mut hooks = OracleHooks {
        tx_times: vec![Vec::new(); medium.nodes()],
    };
    let stats = EventCore::new(cfg, &medium, &mut hooks, seed).run(1_000_000);
    let (collision_fraction, per_tx) = collision_stats(&hooks.tx_times, cfg.packet_duration_s);
    MacResult {
        tx_times: hooks.tx_times,
        collision_fraction,
        per_tx_collision_fraction: per_tx,
        duration_s: stats.duration_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::simulate;

    fn easy(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        (vec![vec![1e-4; n]; n], vec![1e-6; n])
    }

    fn assert_results_identical(a: &MacResult, b: &MacResult) {
        assert_eq!(a.tx_times, b.tx_times);
        assert_eq!(
            a.collision_fraction.to_bits(),
            b.collision_fraction.to_bits()
        );
        assert_eq!(
            a.per_tx_collision_fraction.len(),
            b.per_tx_collision_fraction.len()
        );
        for (x, y) in a
            .per_tx_collision_fraction
            .iter()
            .zip(&b.per_tx_collision_fraction)
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.duration_s.to_bits(), b.duration_s.to_bits());
    }

    #[test]
    fn matches_oracle_with_carrier_sense() {
        let (g, nf) = easy(4);
        let cfg = MacConfig {
            max_packets: 25,
            ..MacConfig::default()
        };
        for seed in [1, 7, 42] {
            assert_results_identical(
                &simulate_events(&cfg, &g, &nf, seed),
                &simulate(&cfg, &g, &nf, seed),
            );
        }
    }

    #[test]
    fn matches_oracle_without_carrier_sense() {
        let (g, nf) = easy(3);
        let cfg = MacConfig {
            carrier_sense: false,
            max_packets: 40,
            ..MacConfig::default()
        };
        assert_results_identical(
            &simulate_events(&cfg, &g, &nf, 9),
            &simulate(&cfg, &g, &nf, 9),
        );
    }

    #[test]
    fn matches_oracle_with_hidden_terminal() {
        let mut gains = vec![vec![1e-4; 3]; 3];
        gains[0][1] = 1e-9;
        gains[1][0] = 1e-9;
        let noise = vec![1e-6; 3];
        let cfg = MacConfig {
            max_packets: 30,
            ..MacConfig::default()
        };
        assert_results_identical(
            &simulate_events(&cfg, &gains, &noise, 5),
            &simulate(&cfg, &gains, &noise, 5),
        );
    }

    #[test]
    fn single_node_never_backs_off() {
        let cfg = MacConfig {
            max_packets: 5,
            ..MacConfig::default()
        };
        let r = simulate_events(&cfg, &[vec![0.0]], &[1e-6], 3);
        assert_eq!(r.tx_times[0].len(), 5);
        assert_eq!(r.collision_fraction, 0.0);
        assert_results_identical(&r, &simulate(&cfg, &[vec![0.0]], &[1e-6], 3));
    }
}
