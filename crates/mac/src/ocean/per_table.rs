//! Analytic packet-error-rate table for the ocean fast path.
//!
//! Sample-level PHY trials cost milliseconds per packet; at ocean scale
//! the simulator delivers millions of packets. For receptions **without**
//! interference the packet fate depends only on the link SNR, which the
//! recorded fig9/fig12 experiments already measured as PER-vs-range
//! curves — so the fast path is a lookup: linear interpolation between
//! the recorded range/PER knots. Sample-level resolution (see
//! [`crate::ocean::phy`]) is reserved for transmissions that actually
//! overlap in time at a receiver, where single-link curves cannot apply.
//!
//! The knots are calibration constants transcribed from EXPERIMENTS.md
//! (`standard`-size runs, 40 packets/config, lake range sweep): Fig. 9d
//! pins the 5 m anchors, Figs. 12a–c the 5–30 m sweep where the adaptive
//! scheme stays at 0–7.5 % while the fixed 1–4 kHz band collapses to
//! 97.5 % by 30 m. `eval/tests/per_calibration.rs` closes the loop by
//! re-running a sample-level trial series at a knot distance and checking
//! it lands inside the recorded binomial confidence interval.

/// Modulation scheme whose recorded PER curve the table answers from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Band {
    /// Per-packet adaptive OFDM band selection (the paper's scheme).
    Adaptive,
    /// The full fixed 1–4 kHz band (the paper's strongest fixed baseline).
    Fixed1to4k,
}

/// Recorded `(range_m, per)` knots for the adaptive scheme (lake).
/// Sources: Fig. 9d (5 m, 0 %), Figs. 12a–c sweep (10/20/30 m).
pub const ADAPTIVE_KNOTS: [(f64, f64); 4] =
    [(5.0, 0.0), (10.0, 0.025), (20.0, 0.05), (30.0, 0.075)];

/// Recorded `(range_m, per)` knots for the fixed 1–4 kHz band (lake).
/// Sources: Fig. 9d (5 m) and the Figs. 12a–c collapse (17.5–97.5 %
/// beyond 5 m).
pub const FIXED_KNOTS: [(f64, f64); 4] = [(5.0, 0.025), (10.0, 0.175), (20.0, 0.6), (30.0, 0.975)];

/// PER-vs-range lookup interpolated from the recorded figure knots.
///
/// Query semantics, pinned by `mac/tests/ocean_per_table.rs`:
///
/// - at a recorded knot range the knot PER is returned **exactly** (no
///   interpolation arithmetic that could perturb the last bit);
/// - between knots, linear interpolation;
/// - below the first knot, clamped to the first knot's PER (the recorded
///   curves are flat at close range);
/// - beyond the last knot, a linear ramp to PER 1.0 at twice the last
///   knot's range — the recorded fixed-band collapse extrapolated —
///   saturating at 1.0 from there on;
/// - always within `[0, 1]` and non-decreasing in range.
#[derive(Debug, Clone)]
pub struct PerTable {
    adaptive: Vec<(f64, f64)>,
    fixed: Vec<(f64, f64)>,
}

impl PerTable {
    /// The table built from the recorded EXPERIMENTS.md knots.
    pub fn recorded() -> Self {
        Self::from_knots(ADAPTIVE_KNOTS.to_vec(), FIXED_KNOTS.to_vec())
    }

    /// A table from explicit knot sets (tests inject synthetic curves).
    /// Knots must be non-empty, strictly increasing in range, have PER in
    /// `[0, 1]` and be non-decreasing in PER.
    pub fn from_knots(adaptive: Vec<(f64, f64)>, fixed: Vec<(f64, f64)>) -> Self {
        for knots in [&adaptive, &fixed] {
            assert!(!knots.is_empty(), "PER table needs at least one knot");
            for w in knots.windows(2) {
                assert!(w[0].0 < w[1].0, "knot ranges must strictly increase");
                assert!(w[0].1 <= w[1].1, "knot PER must be non-decreasing");
            }
            for &(r, p) in knots {
                assert!(r > 0.0 && (0.0..=1.0).contains(&p), "knot ({r}, {p})");
            }
        }
        Self { adaptive, fixed }
    }

    fn knots(&self, band: Band) -> &[(f64, f64)] {
        match band {
            Band::Adaptive => &self.adaptive,
            Band::Fixed1to4k => &self.fixed,
        }
    }

    /// Packet error probability for a clean (interference-free) reception
    /// at `range_m`. See the type docs for the query semantics.
    pub fn per(&self, band: Band, range_m: f64) -> f64 {
        let knots = self.knots(band);
        let (first, last) = (knots[0], knots[knots.len() - 1]);
        if range_m <= first.0 {
            return first.1;
        }
        // Exact knot hit: return the recorded value verbatim.
        if let Some(&(_, p)) = knots.iter().find(|&&(r, _)| r == range_m) {
            return p;
        }
        if range_m < last.0 {
            let hi = knots.partition_point(|&(r, _)| r < range_m);
            let (r0, p0) = knots[hi - 1];
            let (r1, p1) = knots[hi];
            let t = (range_m - r0) / (r1 - r0);
            return (p0 + t * (p1 - p0)).clamp(0.0, 1.0);
        }
        // Extension ramp: recorded collapse extrapolated to certain loss
        // at twice the last recorded range.
        if range_m >= 2.0 * last.0 {
            return 1.0;
        }
        let t = (range_m - last.0) / last.0;
        (last.1 + t * (1.0 - last.1)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_at_recorded_knots() {
        let t = PerTable::recorded();
        for &(r, p) in &ADAPTIVE_KNOTS {
            assert_eq!(t.per(Band::Adaptive, r).to_bits(), p.to_bits());
        }
        for &(r, p) in &FIXED_KNOTS {
            assert_eq!(t.per(Band::Fixed1to4k, r).to_bits(), p.to_bits());
        }
    }

    #[test]
    fn clamps_below_first_knot_and_saturates_far_out() {
        let t = PerTable::recorded();
        assert_eq!(t.per(Band::Adaptive, 0.5), ADAPTIVE_KNOTS[0].1);
        assert_eq!(t.per(Band::Fixed1to4k, 1e6), 1.0);
        // Ramp midpoint: halfway between last knot PER and 1.0 at 1.5x.
        let mid = t.per(Band::Fixed1to4k, 45.0);
        let want = 0.975 + 0.5 * (1.0 - 0.975);
        assert!((mid - want).abs() < 1e-12, "{mid} vs {want}");
    }

    #[test]
    fn interpolates_between_knots() {
        let t = PerTable::recorded();
        let p = t.per(Band::Adaptive, 15.0);
        assert!((p - 0.0375).abs() < 1e-12, "{p}");
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn rejects_unsorted_knots() {
        PerTable::from_knots(vec![(10.0, 0.0), (5.0, 0.1)], vec![(5.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_non_monotone_per() {
        PerTable::from_knots(vec![(5.0, 0.5), (10.0, 0.1)], vec![(5.0, 0.0)]);
    }
}
