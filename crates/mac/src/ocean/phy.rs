//! Reception-outcome resolution: the PER-table fast path and the
//! sample-level slow path, plus the dispatch rule between them.
//!
//! **Dispatch rule** (DESIGN.md §11): a reception with **no** overlapping
//! transmission at its destination is decided straight from the
//! [`PerTable`] — its fate depends only on link SNR, which the recorded
//! range/PER curves already measure. Only receptions with actual
//! time-overlap at the receiver — where no single-link curve applies —
//! invoke the sample-level machinery: received powers are *rendered*
//! through the real [`aqua_channel::link::Link`] (a seeded wideband probe
//! through the same multipath + device chain as every dive-site
//! experiment, riding the PR 4 bit-exact geometry-keyed FIR memo), the
//! SINR over the overlap is formed, and the equivalent interference-free
//! range at that SINR indexes the same PER table. Probe renders are
//! memoized per 0.5 m range bucket in [`ProbeCache`], so a 10 000-node
//! run performs a few hundred sample-level renders, not millions.
//!
//! Every outcome is a pure function of `(reception, seed)`: the Bernoulli
//! draw comes from a per-reception `StdRng` keyed by
//! `(seed, tx, dest, start time)`, never from a shared stream — which is
//! what lets the ocean simulator fan reception batches across
//! [`aqua_par::Pool`] workers with bit-identical results in any order
//! (`mac/tests/ocean_determinism.rs`).

use aqua_channel::environments::{Environment, Site};
use aqua_channel::geometry::Pos;
use aqua_channel::link::{Link, LinkConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Mutex;

use super::event::Reception;
use super::per_table::{Band, PerTable};
use super::topology::{RangeGain, TX_POWER};

/// Probe-power cache: mean-square received power of the standard wideband
/// probe, rendered sample-level through the real channel at quantized
/// ranges.
///
/// Renders are lazy and memoized per 0.5 m bucket behind a mutex; the
/// cached value is a pure function of the bucket (fixed probe seed, fixed
/// geometry), so concurrent fills from pool workers cannot perturb
/// results — only who pays the render.
pub struct ProbeCache {
    env: Environment,
    cells: Mutex<HashMap<u32, f64>>,
}

/// Range quantization of the probe cache (meters per bucket).
pub const PROBE_BUCKET_M: f64 = 0.5;
const PROBE_SEED: u64 = 0x0CEA_0CEA;
const PROBE_SAMPLES: usize = 4800; // 0.1 s at 48 kHz

impl ProbeCache {
    /// A cache rendering probes in the given environment at 2 m depth.
    pub fn new(env: Environment) -> Self {
        Self {
            env,
            cells: Mutex::new(HashMap::new()),
        }
    }

    /// The lake cache (the calibration environment of the PER knots).
    pub fn lake() -> Self {
        Self::new(Environment::preset(Site::Lake))
    }

    fn bucket(range_m: f64) -> u32 {
        (range_m.max(1.0) / PROBE_BUCKET_M).round() as u32
    }

    /// Rendered received power (mean square) at `range_m`, quantized to
    /// the cache bucket.
    pub fn power(&self, range_m: f64) -> f64 {
        let b = Self::bucket(range_m);
        let mut cells = self.cells.lock().expect("probe cache poisoned");
        *cells.entry(b).or_insert_with(|| {
            let r = b as f64 * PROBE_BUCKET_M;
            let mut cfg = LinkConfig::s9_pair(
                self.env.clone(),
                Pos::new(0.0, 0.0, 2.0),
                Pos::new(r, 0.0, 2.0),
                PROBE_SEED,
            );
            cfg.noise = false;
            cfg.impulses = false;
            let mut link = Link::new(cfg);
            let mut rng = StdRng::seed_from_u64(PROBE_SEED ^ b as u64);
            // Uniform white probe scaled to the standard TX_POWER band
            // power (rms² = 0.04): uniform on [-1, 1] has power 1/3.
            let scale = (TX_POWER * 3.0).sqrt();
            let probe: Vec<f64> = (0..PROBE_SAMPLES)
                .map(|_| rng.gen_range(-1.0..=1.0) * scale)
                .collect();
            let rx = link.transmit(&probe, 0.0);
            rx.iter().map(|&x| x * x).sum::<f64>() / rx.len().max(1) as f64
        })
    }

    /// Number of distinct range buckets rendered so far (the count of
    /// sample-level link renders the whole run paid).
    pub fn rendered_buckets(&self) -> usize {
        self.cells.lock().expect("probe cache poisoned").len()
    }
}

/// Fate of one reception after PHY resolution.
#[derive(Debug, Clone, Copy)]
pub struct RxOutcome {
    /// Transmitting node.
    pub tx: u32,
    /// Destination node.
    pub dest: u32,
    /// Whether the packet was delivered.
    pub delivered: bool,
    /// Whether resolution went through the sample-level overlap path.
    pub overlap: bool,
    /// Whether the destination was transmitting (half-duplex loss).
    pub dest_busy: bool,
    /// End-to-end latency: carrier-sense access delay + propagation +
    /// packet duration (seconds).
    pub latency_s: f64,
}

/// The dispatcher: owns the PER table, the probe cache and the RNG
/// keying. Shared immutably across pool workers.
pub struct PhyResolver {
    table: PerTable,
    band: Band,
    rg: RangeGain,
    probe: ProbeCache,
    packet_duration_s: f64,
    seed: u64,
}

impl PhyResolver {
    /// A resolver for the given band using the recorded PER table, the
    /// lake probe cache and per-reception RNG keyed by `seed`.
    pub fn new(band: Band, rg: RangeGain, packet_duration_s: f64, seed: u64) -> Self {
        Self {
            table: PerTable::recorded(),
            band,
            rg,
            probe: ProbeCache::lake(),
            packet_duration_s,
            seed,
        }
    }

    /// Sample-level renders performed so far.
    pub fn rendered_buckets(&self) -> usize {
        self.probe.rendered_buckets()
    }

    /// Resolves one reception. Pure in `(rx, self.seed)` up to the
    /// memoized probe renders (whose values are themselves pure).
    pub fn resolve(&self, rx: &Reception) -> RxOutcome {
        let prop = rx.arrival_s - rx.start_s;
        let range = (prop * super::event::SOUND_SPEED).max(1.0);
        let latency_s = rx.access_delay_s + prop + self.packet_duration_s;
        let base = RxOutcome {
            tx: rx.tx,
            dest: rx.dest,
            delivered: false,
            overlap: !rx.interferers.is_empty(),
            dest_busy: rx.dest_busy,
            latency_s,
        };
        if rx.dest_busy {
            // Half-duplex: receiver was transmitting during the window.
            return base;
        }
        let per = if rx.interferers.is_empty() {
            // Fast path: clean reception, recorded curve applies.
            self.table.per(self.band, range)
        } else {
            // Slow path: render signal and interferer powers sample-level
            // and fold the SINR back into an equivalent clean range.
            let p_sig = self.probe.power(range);
            let mut interference = 0.0;
            for itf in &rx.interferers {
                let r_itf = self.rg.range_for_sensed(itf.power);
                let frac = (itf.overlap_s / self.packet_duration_s).clamp(0.0, 1.0);
                interference += self.probe.power(r_itf) * frac;
            }
            // Rendered powers and the budget noise floor share units
            // (in-band power relative to the 0.04 transmit band power),
            // so the SINR composes directly; the calibrated fit then
            // inverts it into the clean range with the same SNR, which
            // indexes the recorded PER curve.
            let noise = self.rg.noise;
            let sinr = p_sig / (noise + interference);
            let r_eff = self
                .rg
                .range_for_sensed((sinr * noise).max(f64::MIN_POSITIVE));
            self.table.per(self.band, r_eff)
        };
        let mut rng = StdRng::seed_from_u64(reception_key(
            self.seed,
            rx.tx,
            rx.dest,
            rx.start_s.to_bits(),
        ));
        let u: f64 = rng.gen_range(0.0..1.0);
        RxOutcome {
            delivered: u >= per,
            ..base
        }
    }
}

/// SplitMix64-style mixing of the reception identity into an RNG seed:
/// decorrelated across `(tx, dest, start)` while fully deterministic.
fn reception_key(seed: u64, tx: u32, dest: u32, start_bits: u64) -> u64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for w in [tx as u64, dest as u64, start_bits] {
        h ^= w;
        h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ocean::event::Interferer;

    fn clean_rx(range_m: f64) -> Reception {
        let prop = range_m / super::super::event::SOUND_SPEED;
        Reception {
            tx: 0,
            dest: 1,
            start_s: 10.0,
            arrival_s: 10.0 + prop,
            access_delay_s: 0.16,
            dest_busy: false,
            interferers: vec![],
        }
    }

    #[test]
    fn clean_reception_at_close_range_delivers() {
        let rg = RangeGain::lake();
        let phy = PhyResolver::new(Band::Adaptive, rg, 0.55, 1);
        // Adaptive PER at 5 m is exactly 0: always delivered.
        let out = phy.resolve(&clean_rx(5.0));
        assert!(out.delivered && !out.overlap && !out.dest_busy);
        assert!((out.latency_s - (0.16 + 5.0 / 1500.0 + 0.55)).abs() < 1e-12);
        assert_eq!(phy.rendered_buckets(), 0, "fast path renders nothing");
    }

    #[test]
    fn dest_busy_always_loses() {
        let rg = RangeGain::lake();
        let phy = PhyResolver::new(Band::Adaptive, rg, 0.55, 1);
        let mut rx = clean_rx(5.0);
        rx.dest_busy = true;
        assert!(!phy.resolve(&rx).delivered);
    }

    #[test]
    fn heavy_overlap_hurts_delivery() {
        let rg = RangeGain::lake();
        let phy = PhyResolver::new(Band::Adaptive, rg, 0.55, 1);
        let mut delivered_clean = 0;
        let mut delivered_jammed = 0;
        for k in 0..40 {
            let mut rx = clean_rx(25.0);
            rx.start_s = k as f64; // vary the Bernoulli key
            if phy.resolve(&rx).delivered {
                delivered_clean += 1;
            }
            // Equal-power interferer overlapping the full window.
            rx.interferers = vec![Interferer {
                node: 2,
                power: rg.sensed(25.0),
                overlap_s: 0.55,
            }];
            if phy.resolve(&rx).delivered {
                delivered_jammed += 1;
            }
        }
        assert!(
            delivered_jammed < delivered_clean,
            "jammed {delivered_jammed} vs clean {delivered_clean}"
        );
        assert!(phy.rendered_buckets() >= 1, "slow path rendered probes");
    }

    #[test]
    fn outcomes_are_deterministic() {
        let rg = RangeGain::lake();
        let phy = PhyResolver::new(Band::Adaptive, rg, 0.55, 42);
        let mut rx = clean_rx(28.0);
        rx.interferers = vec![Interferer {
            node: 3,
            power: rg.sensed(40.0),
            overlap_s: 0.2,
        }];
        let a = phy.resolve(&rx);
        let b = phy.resolve(&rx);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
    }

    #[test]
    fn probe_power_falls_with_range() {
        let probe = ProbeCache::lake();
        let near = probe.power(5.0);
        let far = probe.power(40.0);
        assert!(near > far, "{near} vs {far}");
        assert_eq!(probe.rendered_buckets(), 2);
        // Memoized: same bucket, no third render.
        let again = probe.power(5.1);
        assert_eq!(again.to_bits(), probe.power(5.0).to_bits());
        assert_eq!(probe.rendered_buckets(), 2);
    }
}
