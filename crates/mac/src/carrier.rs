//! Carrier sensing by energy detection (§2.4).
//!
//! Every 80 ms the phone measures the average energy in the 1–4 kHz
//! communication band; the busy threshold is calibrated from a few seconds
//! of ambient noise measured in the environment before use.

use aqua_dsp::fir::{design_bandpass, StreamingFir};
use aqua_dsp::window::Window;

/// Sensing interval (seconds) from the paper.
pub const SENSE_INTERVAL_S: f64 = 0.08;

/// Measures mean in-band (1–4 kHz) power of a buffer.
pub fn band_energy(samples: &[f64], fs: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let taps = design_bandpass(129, 1000.0, 4000.0, fs, Window::Hamming);
    let filtered = aqua_dsp::fir::filter_same(samples, &taps);
    filtered.iter().map(|v| v * v).sum::<f64>() / filtered.len() as f64
}

/// Calibrates the busy threshold from an ambient noise recording: the mean
/// in-band noise power scaled by `margin` (linear power factor).
pub fn calibrate_threshold(noise: &[f64], fs: f64, margin: f64) -> f64 {
    band_energy(noise, fs) * margin
}

/// Streaming carrier-sense front end: feed audio blocks, poll busy/idle at
/// the 80 ms cadence.
pub struct CarrierSense {
    fir: StreamingFir,
    fs: f64,
    threshold: f64,
    window: usize,
    acc: f64,
    count: usize,
    /// Most recent completed 80 ms measurement.
    last_energy: Option<f64>,
}

impl CarrierSense {
    /// Creates a sensor with a calibrated threshold.
    pub fn new(fs: f64, threshold: f64) -> Self {
        let taps = design_bandpass(129, 1000.0, 4000.0, fs, Window::Hamming);
        Self {
            fir: StreamingFir::new(taps),
            fs,
            threshold,
            window: (SENSE_INTERVAL_S * fs).round() as usize,
            acc: 0.0,
            count: 0,
            last_energy: None,
        }
    }

    /// Feeds a block of microphone samples.
    pub fn feed(&mut self, block: &[f64]) {
        let filtered = self.fir.process(block);
        for v in filtered {
            self.acc += v * v;
            self.count += 1;
            if self.count == self.window {
                self.last_energy = Some(self.acc / self.window as f64);
                self.acc = 0.0;
                self.count = 0;
            }
        }
    }

    /// The most recent completed 80 ms energy measurement.
    pub fn last_energy(&self) -> Option<f64> {
        self.last_energy
    }

    /// Whether the channel currently reads busy.
    pub fn busy(&self) -> bool {
        self.last_energy
            .map(|e| e > self.threshold)
            .unwrap_or(false)
    }

    /// Sample rate the sensor was built for.
    pub fn sample_rate(&self) -> f64 {
        self.fs
    }

    /// The calibrated threshold (mean in-band power).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_dsp::chirp::tone;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noise(n: usize, rms: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                rms * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn in_band_tone_reads_higher_than_out_of_band() {
        let fs = 48000.0;
        let in_band = band_energy(&tone(2000.0, 9600, fs), fs);
        let out_band = band_energy(&tone(8000.0, 9600, fs), fs);
        assert!(in_band > 50.0 * out_band);
    }

    #[test]
    fn sensor_goes_busy_on_signal_and_idle_on_noise() {
        let fs = 48000.0;
        let ambient = noise(48000, 0.005, 1);
        let threshold = calibrate_threshold(&ambient, fs, 4.0);
        let mut cs = CarrierSense::new(fs, threshold);
        cs.feed(&noise(7680, 0.005, 2)); // two 80 ms windows of noise
        assert!(!cs.busy(), "ambient noise must read idle");
        let mut sig = tone(2500.0, 7680, fs);
        for v in sig.iter_mut() {
            *v *= 0.05;
        }
        cs.feed(&sig);
        assert!(cs.busy(), "in-band signal must read busy");
    }

    #[test]
    fn out_of_band_interference_does_not_trigger() {
        let fs = 48000.0;
        let threshold = calibrate_threshold(&noise(48000, 0.005, 3), fs, 4.0);
        let mut cs = CarrierSense::new(fs, threshold);
        let mut sig = tone(10_000.0, 15_360, fs); // loud but out of band
        for v in sig.iter_mut() {
            *v *= 0.3;
        }
        cs.feed(&sig);
        assert!(
            !cs.busy(),
            "10 kHz interference must not trigger 1-4 kHz sensing"
        );
    }

    #[test]
    fn measurement_cadence_is_80ms() {
        let fs = 48000.0;
        let mut cs = CarrierSense::new(fs, 1.0);
        cs.feed(&vec![0.0; 3839]);
        assert!(cs.last_energy().is_none(), "no full window yet");
        cs.feed(&[0.0]);
        assert!(
            cs.last_energy().is_some(),
            "3840 samples = one 80 ms window"
        );
    }

    #[test]
    fn no_measurement_reads_idle() {
        let cs = CarrierSense::new(48000.0, 0.1);
        assert!(!cs.busy());
    }
}
