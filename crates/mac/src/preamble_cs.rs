//! Preamble-detection-based carrier sense — the §2.4 extension the paper
//! describes but leaves unimplemented ("Wi-Fi receivers also use preamble
//! detection as part of carrier sense, which we could also incorporate to
//! improve noise resilience").
//!
//! Energy detection alone cannot tell a neighbor's packet from a loud
//! in-band noise event (a boat, an anchor chain): it defers on both.
//! Preamble-based sensing marks the channel busy only when the buffered
//! audio actually contains a modem preamble, and holds the busy state for
//! the expected packet airtime afterwards.

use aqua_dsp::fir::{design_bandpass, StreamingFir};
use aqua_dsp::window::Window;
use aqua_phy::preamble::{detect, DetectorConfig, Preamble};

/// Carrier sense that combines energy detection with preamble detection.
pub struct PreambleCarrierSense {
    preamble: Preamble,
    detector: DetectorConfig,
    front_end: StreamingFir,
    /// Rolling window of band-passed audio, long enough to hold a preamble
    /// plus slack.
    window: Vec<f64>,
    window_cap: usize,
    /// Samples of "busy" remaining after a preamble was seen (the expected
    /// packet airtime).
    busy_hold: usize,
    /// Airtime to hold busy after a preamble, in samples.
    hold_samples: usize,
}

impl PreambleCarrierSense {
    /// Creates a sensor. `packet_airtime_s` is the nominal duration of a
    /// packet following a preamble (header remainder + gap + data).
    pub fn new(preamble: Preamble, packet_airtime_s: f64) -> Self {
        let params = *preamble.params();
        let taps = design_bandpass(129, 850.0, 4150.0, params.fs, Window::Hamming);
        let window_cap = preamble.len() * 2 + params.symbol_len();
        Self {
            preamble,
            detector: DetectorConfig::default(),
            front_end: StreamingFir::new(taps),
            window: Vec::new(),
            window_cap,
            busy_hold: 0,
            hold_samples: (packet_airtime_s * params.fs) as usize,
        }
    }

    /// Feeds a block of microphone samples; returns `true` if a preamble
    /// was newly detected in this block.
    pub fn feed(&mut self, block: &[f64]) -> bool {
        self.busy_hold = self.busy_hold.saturating_sub(block.len());
        let filtered = self.front_end.process(block);
        self.window.extend(filtered);
        if self.window.len() > self.window_cap {
            let drop = self.window.len() - self.window_cap;
            self.window.drain(..drop);
        }
        if self.window.len() < self.preamble.len() {
            return false;
        }
        if detect(&self.window, &self.preamble, &self.detector).is_some() {
            self.busy_hold = self.hold_samples;
            // consume the matched region so one preamble triggers once
            self.window.clear();
            self.front_end.reset();
            return true;
        }
        false
    }

    /// Whether the channel is considered busy (a packet is in flight).
    pub fn busy(&self) -> bool {
        self.busy_hold > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_phy::params::OfdmParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noise(n: usize, rms: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                rms * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn preamble_triggers_busy_and_expires() {
        let params = OfdmParams::default();
        let preamble = Preamble::new(params);
        let mut cs = PreambleCarrierSense::new(preamble.clone(), 0.3);
        // feed noise: idle
        for chunk in noise(9600, 0.01, 1).chunks(960) {
            cs.feed(chunk);
        }
        assert!(!cs.busy());
        // feed a preamble (attenuated, in noise)
        let mut sig = noise(preamble.len() + 2000, 0.01, 2);
        for (i, &s) in preamble.samples.iter().enumerate() {
            sig[1000 + i] += s * 0.1;
        }
        let mut detected = false;
        for chunk in sig.chunks(960) {
            detected |= cs.feed(chunk);
        }
        assert!(detected, "preamble must be detected");
        assert!(cs.busy(), "busy during the packet hold");
        // after the hold time elapses: idle again
        for chunk in noise(48_000, 0.01, 3).chunks(960) {
            cs.feed(chunk);
        }
        assert!(!cs.busy(), "hold must expire");
    }

    #[test]
    fn loud_non_modem_noise_does_not_defer() {
        // The advantage over energy sensing: an in-band tone blast is NOT
        // a packet and must not hold the channel busy.
        let params = OfdmParams::default();
        let preamble = Preamble::new(params);
        let mut cs = PreambleCarrierSense::new(preamble, 0.3);
        let blast: Vec<f64> = aqua_dsp::chirp::tone(2000.0, 48_000, 48_000.0)
            .into_iter()
            .map(|v| v * 0.5)
            .collect();
        for chunk in blast.chunks(960) {
            cs.feed(chunk);
        }
        assert!(
            !cs.busy(),
            "tone blast must read idle under preamble sensing"
        );
    }
}
