//! # aqua-mac
//!
//! Carrier-sense MAC for AquaModem (§2.4 of the paper):
//!
//! - [`carrier`]: waveform-level energy detection — 80 ms averages of
//!   1–4 kHz band power against a noise-calibrated threshold.
//! - [`netsim`]: slot-level multi-transmitter simulation reproducing the
//!   Fig. 19 collision experiments (with/without carrier sense, random
//!   backoff in packet-duration multiples).
//! - [`budget`]: link-budget gain matrices derived from the channel model,
//!   feeding the slot-level simulator.
//! - [`ocean`]: the event-driven ocean-scale simulator — bit-identical to
//!   [`netsim`] on small dense configs (the oracle-equivalence contract),
//!   and the engine behind the 10 000-node `repro ocean` deployments.
//!
//! [`preamble_cs`] implements the preamble-detection-based carrier sense
//! the paper lists as an improvement in §2.4 (it defers only on actual
//! modem preambles, not on loud noise events). RTS/CTS-style feedback
//! preambles remain unimplemented, as in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod carrier;
pub mod netsim;
pub mod ocean;
pub mod preamble_cs;

pub use carrier::{band_energy, calibrate_threshold, CarrierSense};
pub use netsim::{collision_stats, simulate, MacConfig, MacResult};
pub use preamble_cs::PreambleCarrierSense;
