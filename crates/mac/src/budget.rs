//! Link budgets: gain matrices for the slot-level MAC simulator, computed
//! from the same channel model as the waveform path.

use aqua_channel::device::Device;
use aqua_channel::environments::Environment;
use aqua_channel::geometry::Pos;
use aqua_channel::link::{Link, LinkConfig, SAMPLE_RATE};
use aqua_channel::mobility::Trajectory;

/// Computes the pairwise in-band power-gain matrix for a set of nodes:
/// `gains[i][j]` is the average linear power gain of the 1–4 kHz band from
/// node `i`'s speaker to node `j`'s microphone (relative to the transmit
/// band power).
pub fn gain_matrix(env: &Environment, positions: &[Pos], devices: &[Device]) -> Vec<Vec<f64>> {
    assert_eq!(positions.len(), devices.len());
    let n = positions.len();
    let freqs: Vec<f64> = (20..80).map(|k| k as f64 * 50.0).collect();
    let mut gains = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let mut link = Link::new(LinkConfig {
                fs: SAMPLE_RATE,
                env: env.clone(),
                tx_device: devices[i],
                rx_device: devices[j],
                tx_traj: Trajectory::fixed(positions[i]),
                rx_traj: Trajectory::fixed(positions[j]),
                noise: false,
                impulses: false,
                seed: (i * 31 + j) as u64,
            });
            let resp = link.frequency_response_db(&freqs, 0.0);
            let mean_pow: f64 =
                resp.iter().map(|&db| 10f64.powf(db / 10.0)).sum::<f64>() / resp.len() as f64;
            gains[i][j] = mean_pow;
        }
    }
    gains
}

/// In-band noise power for each node in this environment: the portion of
/// the ambient noise RMS falling in 1–4 kHz (a fixed fraction of total
/// noise power for the Fig. 4 spectral shape, ≈6 %).
pub fn noise_floor(env: &Environment, n_nodes: usize) -> Vec<f64> {
    let total_power = env.noise.rms * env.noise.rms;
    vec![total_power * 0.06; n_nodes]
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqua_channel::environments::Site;

    #[test]
    fn gains_fall_with_distance() {
        let env = Environment::preset(Site::Bridge);
        let positions = vec![
            Pos::new(0.0, 0.0, 1.0),
            Pos::new(5.0, 0.0, 1.0),
            Pos::new(20.0, 0.0, 1.0),
        ];
        let devices = vec![
            Device::default_rig(1),
            Device::default_rig(2),
            Device::default_rig(3),
        ];
        let g = gain_matrix(&env, &positions, &devices);
        assert!(
            g[0][1] > g[0][2],
            "5 m gain {} vs 20 m gain {}",
            g[0][1],
            g[0][2]
        );
        assert_eq!(g[0][0], 0.0);
    }

    #[test]
    fn nearby_node_is_sensed_above_noise() {
        // The Fig. 19 deployment: transmitters 5-10 m from each other must
        // sense each other's packets.
        let env = Environment::preset(Site::Bridge);
        let positions = vec![Pos::new(0.0, 0.0, 1.0), Pos::new(7.0, 0.0, 1.0)];
        let devices = vec![Device::default_rig(1), Device::default_rig(2)];
        let g = gain_matrix(&env, &positions, &devices);
        let nf = noise_floor(&env, 2);
        // transmit band power is target_rms² = 0.04
        let rx_power = g[0][1] * 0.04;
        assert!(
            rx_power > 4.0 * nf[1],
            "sensed power {rx_power} vs noise {}",
            nf[1]
        );
    }
}
