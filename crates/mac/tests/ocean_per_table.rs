//! Property suite for the analytic PER lookup table: monotone in range
//! within each band, clamped to `[0, 1]`, exact at the recorded
//! fig9/fig12 knots, and the same guarantees for arbitrary synthetic knot
//! sets. The sample-level cross-check (a real trial series at a knot
//! distance landing inside the recorded confidence interval) lives in
//! `eval/tests/per_calibration.rs` next to the trial machinery.

use aqua_mac::ocean::per_table::{Band, PerTable, ADAPTIVE_KNOTS, FIXED_KNOTS};
use proptest::prelude::*;

#[test]
fn exact_at_every_recorded_knot() {
    let t = PerTable::recorded();
    for &(r, p) in &ADAPTIVE_KNOTS {
        assert_eq!(t.per(Band::Adaptive, r).to_bits(), p.to_bits(), "r={r}");
    }
    for &(r, p) in &FIXED_KNOTS {
        assert_eq!(t.per(Band::Fixed1to4k, r).to_bits(), p.to_bits(), "r={r}");
    }
}

#[test]
fn adaptive_beats_fixed_band_at_range() {
    // The fig12 headline: the adaptive scheme stays usable where the
    // fixed band collapses.
    let t = PerTable::recorded();
    for r in [10.0, 20.0, 30.0, 45.0] {
        assert!(
            t.per(Band::Adaptive, r) < t.per(Band::Fixed1to4k, r),
            "r={r}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Monotone in range within each band, for any pair of ranges.
    #[test]
    fn recorded_table_is_monotone(a in 0.1f64..=200.0, b in 0.1f64..=200.0) {
        let t = PerTable::recorded();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for band in [Band::Adaptive, Band::Fixed1to4k] {
            prop_assert!(
                t.per(band, lo) <= t.per(band, hi),
                "band {band:?}: per({lo}) > per({hi})"
            );
        }
    }

    /// Clamped to [0, 1] over a far wider range than the knots span.
    #[test]
    fn recorded_table_is_clamped(r in 0.001f64..=100_000.0) {
        let t = PerTable::recorded();
        for band in [Band::Adaptive, Band::Fixed1to4k] {
            let p = t.per(band, r);
            prop_assert!((0.0..=1.0).contains(&p), "band {band:?} r={r} per={p}");
        }
    }

    /// The same properties hold for arbitrary synthetic knot sets: build
    /// a random valid (sorted-range, monotone-PER) table and check knot
    /// exactness, monotonicity and clamping between and beyond knots.
    #[test]
    fn synthetic_tables_keep_the_invariants(
        ranges in proptest::collection::vec(0.5f64..=100.0, 2..6),
        steps in proptest::collection::vec(0.0f64..=0.4, 6),
        probe in 0.1f64..=400.0,
        probe2 in 0.1f64..=400.0,
    ) {
        // Sort + dedup ranges; accumulate steps into a monotone PER curve.
        let mut rs = ranges.clone();
        rs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        rs.dedup();
        prop_assume!(rs.len() >= 2);
        let mut per = 0.0f64;
        let knots: Vec<(f64, f64)> = rs
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                per = (per + steps[i % steps.len()]).min(1.0);
                (r, per)
            })
            .collect();
        let t = PerTable::from_knots(knots.clone(), knots.clone());
        for &(r, p) in &knots {
            prop_assert_eq!(t.per(Band::Adaptive, r).to_bits(), p.to_bits());
        }
        let (lo, hi) = if probe <= probe2 { (probe, probe2) } else { (probe2, probe) };
        prop_assert!(t.per(Band::Adaptive, lo) <= t.per(Band::Adaptive, hi));
        let p = t.per(Band::Fixed1to4k, probe);
        prop_assert!((0.0..=1.0).contains(&p));
        // Far beyond twice the last knot: certain loss.
        prop_assert_eq!(t.per(Band::Adaptive, knots.last().unwrap().0 * 2.0 + 1.0), 1.0);
    }
}
