//! Parallel ≡ serial regression for the ocean simulator, mirroring
//! `eval/tests/determinism.rs`: the same deployment run on 1, 2 and 4
//! workers (the `AQUA_PAR_THREADS` settings, here as explicit pools) must
//! produce **bit-identical** results field by field. Work distribution
//! decides wall-clock, never results: MAC decisions are serial by
//! construction, and each reception outcome is a pure function of
//! `(reception, seed)` resolved in item order.

use aqua_mac::ocean::{run_ocean, ChurnConfig, OceanConfig, OceanResult, TopologyKind};
use aqua_par::Pool;

fn assert_result_identical(par: &OceanResult, ser: &OceanResult, threads: usize) {
    let ctx = format!("{threads} threads");
    assert_eq!(par.nodes, ser.nodes, "{ctx}");
    assert_eq!(par.duration_s.to_bits(), ser.duration_s.to_bits(), "{ctx}");
    assert_eq!(par.transmissions, ser.transmissions, "{ctx}");
    assert_eq!(par.receptions, ser.receptions, "{ctx}");
    assert_eq!(par.delivered, ser.delivered, "{ctx}");
    assert_eq!(
        par.delivery_rate.to_bits(),
        ser.delivery_rate.to_bits(),
        "{ctx}: delivery {} vs {}",
        par.delivery_rate,
        ser.delivery_rate
    );
    assert_eq!(par.dest_busy_losses, ser.dest_busy_losses, "{ctx}");
    assert_eq!(par.churn_losses, ser.churn_losses, "{ctx}");
    assert_eq!(
        par.downtime_frac.to_bits(),
        ser.downtime_frac.to_bits(),
        "{ctx}"
    );
    assert_eq!(par.overlap_receptions, ser.overlap_receptions, "{ctx}");
    assert_eq!(
        par.collision_fraction.to_bits(),
        ser.collision_fraction.to_bits(),
        "{ctx}: collisions {} vs {}",
        par.collision_fraction,
        ser.collision_fraction
    );
    assert_eq!(
        par.latency_mean_s.to_bits(),
        ser.latency_mean_s.to_bits(),
        "{ctx}: latency mean"
    );
    assert_eq!(
        par.latency_p50_s.to_bits(),
        ser.latency_p50_s.to_bits(),
        "{ctx}: latency p50"
    );
    assert_eq!(
        par.latency_p90_s.to_bits(),
        ser.latency_p90_s.to_bits(),
        "{ctx}: latency p90"
    );
    assert_eq!(par.fairness.to_bits(), ser.fairness.to_bits(), "{ctx}");
    assert_eq!(par.events, ser.events, "{ctx}");
    assert_eq!(par.peak_heap, ser.peak_heap, "{ctx}");
    assert_eq!(
        par.peak_collision_window, ser.peak_collision_window,
        "{ctx}"
    );
    assert_eq!(
        par.mean_degree.to_bits(),
        ser.mean_degree.to_bits(),
        "{ctx}"
    );
}

#[test]
fn parallel_ocean_run_is_bit_identical_to_serial() {
    // Dense swarm + small batch: many reception flushes per run, each
    // fanned across workers with chunk size 1 to force real interleaving.
    let mut cfg = OceanConfig::deployment(TopologyKind::Swarm, 48, 900.0, 11);
    cfg.mac.inter_packet_gap_s = (20.0, 60.0); // contended enough to overlap
    cfg.mac.initial_delay_s = (0.0, 30.0);
    cfg.batch = 8;
    let serial = run_ocean(&cfg, &Pool::new(1));
    assert!(serial.receptions > 20, "workload too small: {serial:?}");
    assert!(
        serial.overlap_receptions > 0,
        "no sample-level work exercised: {serial:?}"
    );
    for threads in [2usize, 4] {
        let par = run_ocean(&cfg, &Pool::new(threads).with_chunk(1));
        assert_result_identical(&par, &serial, threads);
    }
}

#[test]
fn grid_run_is_pool_invariant_too() {
    let cfg = OceanConfig::deployment(TopologyKind::Grid, 49, 600.0, 5);
    let serial = run_ocean(&cfg, &Pool::new(1));
    let par = run_ocean(&cfg, &Pool::new(4).with_chunk(1));
    assert_result_identical(&par, &serial, 4);
}

#[test]
fn churned_fleet_is_pool_invariant() {
    // Churn shifts MAC event timing (deferred wakeups) and drops
    // asleep-destination receptions before the parallel PHY ever sees
    // them — neither may depend on worker count.
    let mut cfg = OceanConfig::deployment(TopologyKind::Swarm, 48, 900.0, 11);
    cfg.mac.inter_packet_gap_s = (20.0, 60.0);
    cfg.mac.initial_delay_s = (0.0, 30.0);
    cfg.batch = 8;
    cfg.churn = ChurnConfig {
        mtbf_s: 200.0,
        mttr_s: 90.0,
        duty_cycle: 0.8,
        duty_period_s: 45.0,
    };
    let serial = run_ocean(&cfg, &Pool::new(1));
    assert!(serial.churn_losses > 0, "churn must bite: {serial:?}");
    assert!(serial.delivered > 0, "fleet must still deliver: {serial:?}");
    for threads in [2usize, 4] {
        let par = run_ocean(&cfg, &Pool::new(threads).with_chunk(1));
        assert_result_identical(&par, &serial, threads);
    }
}

/// Pinned baselines captured before the relay stack landed: a plain
/// (hooks-disabled) ocean run must still produce these exact numbers,
/// float for float. The `SimHooks` seam the relay tier plugs into must
/// leave the default trajectory — MAC decisions, RNG stream, PHY draws —
/// completely untouched. Any drift here means the seam leaked.
mod pinned_baselines {
    use super::*;

    fn swarm_cfg() -> OceanConfig {
        let mut cfg = OceanConfig::deployment(TopologyKind::Swarm, 48, 900.0, 11);
        cfg.mac.inter_packet_gap_s = (20.0, 60.0);
        cfg.mac.initial_delay_s = (0.0, 30.0);
        cfg.batch = 8;
        cfg
    }

    #[test]
    fn plain_swarm_matches_pre_relay_capture() {
        let r = run_ocean(&swarm_cfg(), &Pool::new(1));
        assert_eq!(r.transmissions, 1050);
        assert_eq!(r.receptions, 1050);
        assert_eq!(r.delivered, 1032);
        assert_eq!(r.delivery_rate.to_bits(), 0.9828571428571429f64.to_bits());
        assert_eq!(r.dest_busy_losses, 1);
        assert_eq!(r.churn_losses, 0);
        assert_eq!(r.overlap_receptions, 660);
        assert_eq!(
            r.collision_fraction.to_bits(),
            0.5933333333333334f64.to_bits()
        );
        assert_eq!(r.latency_mean_s.to_bits(), 1.0756141806825923f64.to_bits());
        assert_eq!(r.latency_p50_s.to_bits(), 0.5725487884358379f64.to_bits());
        assert_eq!(r.latency_p90_s.to_bits(), 2.8902639100224503f64.to_bits());
        assert_eq!(r.fairness.to_bits(), 0.9958707360861759f64.to_bits());
        assert_eq!(r.events, 9989);
        assert_eq!(r.peak_heap, 53);
        assert_eq!(r.peak_collision_window, 4);
        assert_eq!(r.probe_renders, 104);
        assert_eq!(r.mean_degree.to_bits(), 47.0f64.to_bits());
    }

    #[test]
    fn churned_swarm_matches_pre_relay_capture() {
        let mut cfg = swarm_cfg();
        cfg.churn = ChurnConfig {
            mtbf_s: 200.0,
            mttr_s: 90.0,
            duty_cycle: 0.8,
            duty_period_s: 45.0,
        };
        let r = run_ocean(&cfg, &Pool::new(1));
        assert_eq!(r.transmissions, 792);
        assert_eq!(r.delivered, 440);
        assert_eq!(r.delivery_rate.to_bits(), 0.5555555555555556f64.to_bits());
        assert_eq!(r.churn_losses, 343);
        assert_eq!(r.downtime_frac.to_bits(), 0.4224462962962963f64.to_bits());
        assert_eq!(r.overlap_receptions, 233);
        assert_eq!(
            r.collision_fraction.to_bits(),
            0.5227272727272727f64.to_bits()
        );
        assert_eq!(r.latency_mean_s.to_bits(), 12.858549419039925f64.to_bits());
        assert_eq!(r.latency_p90_s.to_bits(), 20.90800041278718f64.to_bits());
        assert_eq!(r.fairness.to_bits(), 0.848408357874071f64.to_bits());
        assert_eq!(r.events, 6165);
        assert_eq!(r.peak_heap, 51);
        assert_eq!(r.probe_renders, 86);
    }

    #[test]
    fn plain_grid_matches_pre_relay_capture() {
        let cfg = OceanConfig::deployment(TopologyKind::Grid, 49, 600.0, 5);
        let r = run_ocean(&cfg, &Pool::new(1));
        assert_eq!(r.transmissions, 115);
        assert_eq!(r.delivered, 88);
        assert_eq!(r.delivery_rate.to_bits(), 0.7652173913043478f64.to_bits());
        assert_eq!(
            r.collision_fraction.to_bits(),
            0.26956521739130435f64.to_bits()
        );
        assert_eq!(r.latency_mean_s.to_bits(), 0.5621497222391182f64.to_bits());
        assert_eq!(r.fairness.to_bits(), 0.8231292517006803f64.to_bits());
        assert_eq!(r.events, 345);
        assert_eq!(r.peak_heap, 52);
        assert_eq!(r.mean_degree.to_bits(), 44.0f64.to_bits());
    }
}

#[test]
fn zero_downtime_churn_is_bit_identical_to_none() {
    // A churn config that schedules no outages must leave the whole run
    // untouched — the wake_at seam defers nothing and draws nothing.
    let base = OceanConfig::deployment(TopologyKind::Swarm, 40, 900.0, 23);
    let mut zero = base.clone();
    zero.churn = ChurnConfig {
        mtbf_s: 0.0,
        mttr_s: 0.0,
        duty_cycle: 1.0,
        duty_period_s: 600.0,
    };
    let a = run_ocean(&base, &Pool::new(1));
    let b = run_ocean(&zero, &Pool::new(1));
    assert_result_identical(&a, &b, 1);
}
