//! Oracle-equivalence property suite: on small random topologies the
//! event-driven simulator must be **bit-identical** to the slot-stepped
//! [`aqua_mac::netsim::simulate`] oracle — every transmission timestamp,
//! the collision fraction, every per-transmitter fairness fraction, and
//! the simulated duration. Any divergence in RNG draw order, carrier
//! sensing, backoff semantics or duration accounting shows up here as a
//! bit diff.

use aqua_mac::netsim::{simulate, MacConfig, MacResult};
use aqua_mac::ocean::simulate_events;
use proptest::prelude::*;

fn assert_identical(ev: &MacResult, oracle: &MacResult, ctx: &str) {
    assert_eq!(ev.tx_times, oracle.tx_times, "tx_times diverge: {ctx}");
    assert_eq!(
        ev.collision_fraction.to_bits(),
        oracle.collision_fraction.to_bits(),
        "collision fraction {} vs {} ({ctx})",
        ev.collision_fraction,
        oracle.collision_fraction
    );
    assert_eq!(
        ev.per_tx_collision_fraction.len(),
        oracle.per_tx_collision_fraction.len(),
        "{ctx}"
    );
    for (i, (a, b)) in ev
        .per_tx_collision_fraction
        .iter()
        .zip(&oracle.per_tx_collision_fraction)
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "per-tx {i}: {a} vs {b} ({ctx})");
    }
    assert_eq!(
        ev.duration_s.to_bits(),
        oracle.duration_s.to_bits(),
        "duration {} vs {} ({ctx})",
        ev.duration_s,
        oracle.duration_s
    );
}

/// Builds an `n×n` gain matrix from a flat sample of per-pair exponents:
/// gains span nine orders of magnitude so cases mix always-audible,
/// hidden-terminal and fully-disconnected links.
fn gains_from(n: usize, exps: &[f64]) -> Vec<Vec<f64>> {
    let mut g = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                g[i][j] = 10f64.powf(exps[i * n + j]);
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline contract: random ≤6-node topologies and MAC configs,
    /// event-driven ≡ oracle bit for bit.
    #[test]
    fn event_driven_matches_oracle(
        n in 1usize..=6,
        exps in proptest::collection::vec(-9.0f64..=-3.0, 36),
        noise_exp in -7.0f64..=-5.0,
        carrier_sense in any::<bool>(),
        max_packets in 1usize..=25,
        packet_duration_s in 0.2f64..=1.0,
        slot_choice in 0usize..3,
        margin in 1.0f64..=8.0,
        init_lo in 0.0f64..=3.0,
        init_span in 0.0f64..=4.0,
        gap_lo in 0.1f64..=1.0,
        gap_span in 0.1f64..=3.0,
        backoff_lo in 1u32..=3,
        backoff_span in 0u32..=3,
        seed in 0u64..=100_000,
    ) {
        let gains = gains_from(n, &exps);
        let noise = vec![10f64.powf(noise_exp); n];
        let cfg = MacConfig {
            slot_s: [0.04, 0.08, 0.16][slot_choice],
            packet_duration_s,
            max_packets,
            initial_delay_s: (init_lo, init_lo + init_span),
            inter_packet_gap_s: (gap_lo, gap_lo + gap_span),
            carrier_sense,
            threshold_margin: margin,
            cs_backoff_packets: (backoff_lo, backoff_lo + backoff_span),
        };
        let ev = simulate_events(&cfg, &gains, &noise, seed);
        let oracle = simulate(&cfg, &gains, &noise, seed);
        let ctx = format!("n={n} cs={carrier_sense} seed={seed} cfg={cfg:?}");
        assert_identical(&ev, &oracle, &ctx);
    }

    /// Strong-coupling stress: every node hears every other far above the
    /// margin, so carrier sense and backoff extension fire constantly —
    /// the RNG-draw-order torture case.
    #[test]
    fn saturated_channel_matches_oracle(
        n in 2usize..=6,
        max_packets in 5usize..=40,
        seed in 0u64..=100_000,
    ) {
        let gains = vec![vec![1e-4; n]; n];
        let noise = vec![1e-6; n];
        let cfg = MacConfig {
            max_packets,
            // tight gaps keep the channel contended the whole run
            initial_delay_s: (0.0, 1.0),
            inter_packet_gap_s: (0.1, 0.5),
            ..MacConfig::default()
        };
        let ev = simulate_events(&cfg, &gains, &noise, seed);
        let oracle = simulate(&cfg, &gains, &noise, seed);
        assert_identical(&ev, &oracle, &format!("saturated n={n} seed={seed}"));
    }
}

/// The oracle's 1 M-slot safety cap must truncate both simulators at the
/// same simulated duration.
#[test]
fn capped_run_truncates_identically() {
    // One packet per node but an initial delay far beyond the cap for
    // node 1: the oracle idles to the cap; the event core must report the
    // same capped duration (and the same node-0 transmissions).
    let gains = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
    let noise = vec![1e-6; 2];
    let cfg = MacConfig {
        max_packets: 1,
        initial_delay_s: (100_000.0, 100_000.0),
        ..MacConfig::default()
    };
    let ev = simulate_events(&cfg, &gains, &noise, 3);
    let oracle = simulate(&cfg, &gains, &noise, 3);
    assert_identical(&ev, &oracle, "capped");
    assert_eq!(oracle.duration_s, 1_000_000.0 * cfg.slot_s);
}
