//! Waveform-level validation of carrier sensing: the energy detector runs
//! on real audio rendered through the shared medium, confirming the
//! envelope-level MAC simulator's sensing assumptions.

use aqua_channel::device::Device;
use aqua_channel::environments::{Environment, Site};
use aqua_channel::geometry::Pos;
use aqua_channel::medium::Medium;
use aqua_channel::mobility::Trajectory;
use aqua_mac::carrier::{calibrate_threshold, CarrierSense};
use aqua_phy::bandselect::Band;
use aqua_phy::ofdm::modulate_data;
use aqua_phy::params::OfdmParams;

fn build_medium() -> (Medium, usize, usize) {
    let mut medium = Medium::new(Environment::preset(Site::Bridge), 48_000.0, 11);
    let a = medium.add_node(
        Device::default_rig(1),
        Trajectory::fixed(Pos::new(0.0, 0.0, 1.0)),
    );
    let b = medium.add_node(
        Device::default_rig(2),
        Trajectory::fixed(Pos::new(7.0, 0.0, 1.0)),
    );
    (medium, a, b)
}

#[test]
fn neighbor_packet_reads_busy_on_real_audio() {
    let (mut medium, a, b) = build_medium();
    // calibrate on ambient noise heard by node b
    let ambient = medium.capture(b, 0, 48_000);
    let threshold = calibrate_threshold(&ambient, 48_000.0, 4.0);
    let mut cs = CarrierSense::new(48_000.0, threshold);

    // a real modem packet from node a, one second into the experiment
    let params = OfdmParams::default();
    let packet = modulate_data(&params, Band::new(0, 59), &vec![1u8; 16]);
    medium.transmit(a, 48_000, &packet);

    // before the packet: idle
    cs.feed(&medium.capture(b, 40_000, 7_680));
    assert!(!cs.busy(), "pre-packet audio must read idle");

    // during the packet: busy — one 80 ms window starting just after the
    // ~5 ms propagation delay (a 16-bit full-band packet lasts only 43 ms,
    // so a second window would already fall past its end)
    cs.feed(&medium.capture(b, 48_400, 3_840));
    assert!(cs.busy(), "neighbor packet must read busy");

    // after the packet: idle again
    let after = 48_000 + packet.len() as u64 + 4_800;
    cs.feed(&medium.capture(b, after, 7_680));
    cs.feed(&medium.capture(b, after + 7_680, 7_680));
    assert!(!cs.busy(), "channel must go idle after the packet ends");
}

#[test]
fn narrowband_feedback_symbol_is_also_sensed() {
    // Even a 2-tone feedback symbol carries full transmit power in-band
    // and must trip the carrier sense of a nearby node.
    let (mut medium, a, b) = build_medium();
    let ambient = medium.capture(b, 0, 48_000);
    let threshold = calibrate_threshold(&ambient, 48_000.0, 4.0);
    let mut cs = CarrierSense::new(48_000.0, threshold);

    let params = OfdmParams::default();
    let fb = aqua_phy::feedback::encode_feedback(&params, Band::new(10, 40));
    medium.transmit(a, 96_000, &fb);
    cs.feed(&medium.capture(b, 96_200, 3_840));
    assert!(cs.busy(), "feedback symbol must be sensed");
}

#[test]
fn distant_transmitter_below_margin_reads_idle() {
    // A very distant transmitter falls under the 4x noise margin — the
    // hidden-node situation the envelope simulator models with low gains.
    let mut medium = Medium::new(Environment::preset(Site::Lake), 48_000.0, 13);
    let a = medium.add_node(
        Device::default_rig(1),
        Trajectory::fixed(Pos::new(0.0, 0.0, 1.0)),
    );
    let b = medium.add_node(
        Device::default_rig(2),
        Trajectory::fixed(Pos::new(150.0, 0.0, 1.0)),
    );
    let ambient = medium.capture(b, 0, 48_000);
    let threshold = calibrate_threshold(&ambient, 48_000.0, 4.0);
    let mut cs = CarrierSense::new(48_000.0, threshold);

    let params = OfdmParams::default();
    let packet = modulate_data(&params, Band::new(0, 59), &vec![0u8; 16]);
    medium.transmit(a, 48_000, &packet);
    cs.feed(&medium.capture(b, 53_000, 7_680));
    assert!(
        !cs.busy(),
        "150 m transmitter should sit below the sense margin"
    );
}
